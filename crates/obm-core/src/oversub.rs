//! Multiple threads per tile — the generalization the paper's §III.B
//! footnote explicitly defers ("A more generalization would be for
//! multiple threads to map to one tile. This is not considered in this
//! paper.").
//!
//! Implemented by **virtual-tile expansion**: a chip whose tiles each hold
//! up to `capacity` threads (an SMT core, or time-shared cores) is
//! equivalent, for the paper's latency model, to a chip with `capacity`
//! co-located virtual tiles per physical tile — every virtual copy shares
//! the physical tile's `TC`/`TM`. Any [`Mapper`] then runs unchanged on
//! the expanded instance, and the result folds back to physical tiles.
//! (Shared injection-port contention between co-located threads is *not*
//! modeled, consistent with the paper's load regime where NI utilization
//! is a few percent.)

use crate::algorithms::Mapper;
use crate::eval::{evaluate, AplReport};
use crate::problem::ObmInstance;
use noc_model::{LatencyParams, TileId, TileLatencies};

/// A thread-to-physical-tile mapping where tiles may host several threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityMapping {
    /// Physical tile of each thread.
    pub thread_to_tile: Vec<TileId>,
    /// Capacity the mapping was computed for.
    pub capacity: usize,
}

impl CapacityMapping {
    /// Number of threads on each physical tile.
    pub fn occupancy(&self, num_tiles: usize) -> Vec<usize> {
        let mut occ = vec![0usize; num_tiles];
        for t in &self.thread_to_tile {
            occ[t.index()] += 1;
        }
        occ
    }
}

/// Build the expanded (virtual-tile) instance for a capacity-`capacity`
/// chip and solve it with `mapper`, folding the result back to physical
/// tiles.
///
/// `tiles` are the *physical* per-tile latency arrays; threads may number
/// up to `capacity × tiles.len()`.
///
/// # Panics
/// Panics if `capacity == 0` or the thread count exceeds the expanded
/// capacity.
pub fn map_with_capacity(
    tiles: &TileLatencies,
    boundaries: Vec<usize>,
    c: Vec<f64>,
    m: Vec<f64>,
    capacity: usize,
    mapper: &dyn Mapper,
    seed: u64,
) -> (CapacityMapping, AplReport) {
    assert!(capacity >= 1, "capacity must be positive");
    let phys = tiles.len();
    assert!(
        c.len() <= capacity * phys,
        "{} threads exceed {}×{} slots",
        c.len(),
        capacity,
        phys
    );
    // Expanded arrays: virtual tile v sits on physical tile v / capacity.
    let mut tc = Vec::with_capacity(phys * capacity);
    let mut tm = Vec::with_capacity(phys * capacity);
    for k in 0..phys {
        for _ in 0..capacity {
            tc.push(tiles.tc(TileId(k)));
            tm.push(tiles.tm(TileId(k)));
        }
    }
    let expanded = TileLatencies::from_raw(tc, tm, tiles.params());
    let inst = ObmInstance::new(expanded, boundaries, c, m);
    let virtual_mapping = mapper.map(&inst, seed);
    let report = evaluate(&inst, &virtual_mapping);
    let thread_to_tile = (0..inst.num_threads())
        .map(|j| TileId(virtual_mapping.tile_of(j).index() / capacity))
        .collect();
    (
        CapacityMapping {
            thread_to_tile,
            capacity,
        },
        report,
    )
}

/// Evaluate a capacity mapping directly against the physical arrays (the
/// APL only depends on physical positions, so this must agree with the
/// expanded-instance report — used as a consistency check).
pub fn evaluate_capacity(
    tiles: &TileLatencies,
    boundaries: &[usize],
    c: &[f64],
    m: &[f64],
    mapping: &CapacityMapping,
) -> Vec<f64> {
    let apps = boundaries.len() - 1;
    let mut per_app = Vec::with_capacity(apps);
    for i in 0..apps {
        let range = boundaries[i]..boundaries[i + 1];
        let mut num = 0.0;
        let mut vol = 0.0;
        for j in range {
            let t = mapping.thread_to_tile[j];
            num += c[j] * tiles.tc(t) + m[j] * tiles.tm(t);
            vol += c[j] + m[j];
        }
        per_app.push(num / vol);
    }
    per_app
}

/// Convenience: default latency params on a fresh mesh, mostly for tests
/// and examples.
pub fn default_tiles(n: usize) -> TileLatencies {
    let mesh = noc_model::Mesh::square(n);
    let mcs = noc_model::MemoryControllers::corners(&mesh);
    TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Global, SortSelectSwap};

    fn rates(n: usize) -> (Vec<usize>, Vec<f64>, Vec<f64>) {
        let c: Vec<f64> = (0..n).map(|j| 0.5 + (j % 7) as f64).collect();
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        (vec![0, n / 2, n], c, m)
    }

    #[test]
    fn capacity_respected_and_reports_agree() {
        // 32 threads on a 4×4 chip with capacity 2.
        let tiles = default_tiles(4);
        let (bounds, c, m) = rates(32);
        let (mapping, report) = map_with_capacity(
            &tiles,
            bounds.clone(),
            c.clone(),
            m.clone(),
            2,
            &SortSelectSwap::default(),
            0,
        );
        let occ = mapping.occupancy(16);
        assert!(occ.iter().all(|&o| o <= 2), "occupancy {occ:?}");
        assert_eq!(occ.iter().sum::<usize>(), 32);
        // Fold-back evaluation agrees with the expanded-instance report.
        let direct = evaluate_capacity(&tiles, &bounds, &c, &m, &mapping);
        for (a, b) in direct.iter().zip(&report.per_app) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn sss_balances_oversubscribed_chip() {
        let tiles = default_tiles(4);
        let (bounds, c, m) = rates(32);
        let (_, sss) = map_with_capacity(
            &tiles,
            bounds.clone(),
            c.clone(),
            m.clone(),
            2,
            &SortSelectSwap::default(),
            0,
        );
        let (_, glob) = map_with_capacity(&tiles, bounds, c, m, 2, &Global, 0);
        assert!(sss.max_apl <= glob.max_apl + 1e-9);
        assert!(sss.dev_apl < 0.2, "dev-APL {}", sss.dev_apl);
    }

    #[test]
    fn capacity_one_equals_plain_instance() {
        let tiles = default_tiles(4);
        let (bounds, c, m) = rates(16);
        let (mapping, report) = map_with_capacity(
            &tiles,
            bounds.clone(),
            c.clone(),
            m.clone(),
            1,
            &SortSelectSwap::default(),
            0,
        );
        let occ = mapping.occupancy(16);
        assert!(occ.iter().all(|&o| o <= 1));
        // Same result as mapping the plain instance directly.
        let inst = ObmInstance::new(tiles.clone(), bounds, c, m);
        let plain = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
        assert!((plain.max_apl - report.max_apl).abs() < 1e-9);
    }

    #[test]
    fn partial_occupancy_supported() {
        // 20 threads on 16 tiles × capacity 2 = 32 slots.
        let tiles = default_tiles(4);
        let (_, c, m) = rates(20);
        let (mapping, _) = map_with_capacity(
            &tiles,
            vec![0, 10, 20],
            c,
            m,
            2,
            &SortSelectSwap::default(),
            0,
        );
        assert_eq!(mapping.thread_to_tile.len(), 20);
        assert!(mapping.occupancy(16).iter().all(|&o| o <= 2));
    }

    #[test]
    #[should_panic]
    fn over_capacity_rejected() {
        let tiles = default_tiles(2);
        let (bounds, c, m) = rates(10); // 10 > 2×4 slots? 2x2 mesh cap 2 = 8
        let _ = map_with_capacity(&tiles, bounds, c, m, 2, &Global, 0);
    }
}
