//! APL evaluation: per-application average packet latency (Eq. 5), the
//! min-max objective (Eq. 6–7), and the evaluation metrics g-APL / max-APL /
//! dev-APL used throughout the paper's Section V.
//!
//! [`evaluate`] computes a full report from scratch in `O(N)`.
//! [`IncrementalEvaluator`] maintains per-application latency numerators so
//! that the sliding-window search of the SSS algorithm can try a window
//! permutation in `O(window)` instead of `O(N)`.

use crate::problem::{Mapping, ObmInstance};
use noc_model::TileId;
use noc_telemetry::{Probe, SolverEvent};
use serde::{Deserialize, Serialize};

/// Full latency report for a mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AplReport {
    /// Per-application APL `d_i` (Eq. 5), in cycles.
    pub per_app: Vec<f64>,
    /// The OBM objective: `max_i w_i·d_i` (Eq. 6; weights are all 1 in
    /// the paper's formulation, making this `max_i d_i`).
    pub max_apl: f64,
    /// `min_i d_i`.
    pub min_apl: f64,
    /// Index of the application attaining the maximum.
    pub argmax: usize,
    /// Population standard deviation of the `d_i` (the paper's dev-APL).
    pub dev_apl: f64,
    /// Global APL: total packet latency ÷ total communication volume
    /// (the paper's g-APL).
    pub g_apl: f64,
}

/// Evaluate a mapping from scratch.
///
/// # Panics
/// Panics (debug) if the mapping is not valid for the instance.
pub fn evaluate(inst: &ObmInstance, mapping: &Mapping) -> AplReport {
    debug_assert!(mapping.is_valid_for(inst), "invalid mapping");
    let a = inst.num_apps();
    let mut per_app = Vec::with_capacity(a);
    let mut total_num = 0.0;
    for i in 0..a {
        let num: f64 = inst
            .app_threads(i)
            .map(|j| inst.placement_cost(j, mapping.tile_of(j)))
            .sum();
        total_num += num;
        per_app.push(num / inst.app_volume(i));
    }
    summarize(inst, per_app, total_num)
}

pub(crate) fn summarize(inst: &ObmInstance, per_app: Vec<f64>, total_num: f64) -> AplReport {
    let (mut max_apl, mut min_apl, mut argmax) = (f64::NEG_INFINITY, f64::INFINITY, 0);
    for (i, &d) in per_app.iter().enumerate() {
        let weighted = inst.app_weight(i) * d;
        if weighted > max_apl {
            max_apl = weighted;
            argmax = i;
        }
        min_apl = min_apl.min(d);
    }
    let mean = per_app.iter().sum::<f64>() / per_app.len() as f64;
    let dev_apl =
        (per_app.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / per_app.len() as f64).sqrt();
    AplReport {
        per_app,
        max_apl,
        min_apl,
        argmax,
        dev_apl,
        g_apl: total_num / inst.total_volume(),
    }
}

/// Maintains per-application latency numerators for a mapping under
/// incremental edits. All query methods are `O(A)` or better; all edits are
/// `O(1)` per thread moved.
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'a> {
    inst: &'a ObmInstance,
    /// The instance's flat SoA tables: cost probes are one indexed load
    /// and thread→app lookups are O(1), instead of recomputing Eq. (13)
    /// and binary-searching the boundary vector per edit.
    tables: &'a crate::batch::EvalTables,
    mapping: Mapping,
    /// tile → thread inverse view.
    inverse: Vec<Option<usize>>,
    /// Per-application latency numerators.
    app_num: Vec<f64>,
    /// Count of effective edits (moves, swaps, window permutations) since
    /// construction — exposed for solver telemetry.
    edits: u64,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Build from an instance and an initial mapping.
    pub fn new(inst: &'a ObmInstance, mapping: Mapping) -> Self {
        assert!(mapping.is_valid_for(inst), "invalid mapping");
        let tables = inst.eval_tables();
        let inverse = mapping.tile_to_thread(inst.num_tiles());
        let app_num = (0..inst.num_apps())
            .map(|i| {
                inst.app_threads(i)
                    .map(|j| tables.cost(j, mapping.tile_of(j).index()))
                    .sum()
            })
            .collect();
        IncrementalEvaluator {
            inst,
            tables,
            mapping,
            inverse,
            app_num,
            edits: 0,
        }
    }

    /// Number of effective edits applied since construction. A
    /// [`move_thread`](Self::move_thread) to the current tile, a
    /// [`swap_tiles`](Self::swap_tiles) of two empty (or identical) tiles,
    /// and other no-ops do not count.
    pub fn edits(&self) -> u64 {
        self.edits
    }

    /// Emit a [`SolverEvent::EvalDelta`] describing the evaluator's current
    /// state: cumulative edit count, the current objective, and the
    /// caller-supplied `delta` (objective change attributed to the most
    /// recent batch of edits).
    pub fn emit_delta(&self, probe: &mut dyn Probe, delta: f64) {
        probe.on_solver_event(&SolverEvent::EvalDelta {
            edits: self.edits,
            objective: self.max_apl(),
            delta,
        });
    }

    /// Current mapping (borrowed).
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Consume the evaluator, returning the final mapping.
    pub fn into_mapping(self) -> Mapping {
        self.mapping
    }

    /// Thread currently on `tile`, if any.
    #[inline]
    pub fn thread_on(&self, tile: TileId) -> Option<usize> {
        self.inverse[tile.index()]
    }

    /// APL of application `i`.
    ///
    /// Deliberately a division, not a multiply by the precomputed
    /// [`ObmInstance::inv_app_volume`]: the reciprocal form differs by
    /// ≤1 ulp, and SA's accept test (`delta <= 0.0`) short-circuits the
    /// RNG draw, so a single flipped ulp desynchronizes the RNG stream
    /// and changes the whole trajectory (measured: the SA 5k-iteration
    /// goldens diverge under the reciprocal). The batch evaluator keeps
    /// the division for the same reason; the precomputed reciprocals are
    /// exposed via [`EvalTables`](crate::EvalTables) for consumers
    /// without a bit-identity contract. See DESIGN.md §13.
    #[inline]
    pub fn app_apl(&self, i: usize) -> f64 {
        self.app_num[i] / self.inst.app_volume(i)
    }

    /// Current objective value `max_i w_i·d_i` (Eq. 6; plain max-APL for
    /// unit weights).
    pub fn max_apl(&self) -> f64 {
        (0..self.inst.num_apps())
            .map(|i| self.inst.app_weight(i) * self.app_apl(i))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of all applications' latency numerators (the g-APL numerator) —
    /// a cheap secondary objective for plateau-escaping local search.
    pub fn total_latency(&self) -> f64 {
        self.app_num.iter().sum()
    }

    /// Current full report.
    pub fn report(&self) -> AplReport {
        let per_app: Vec<f64> = (0..self.inst.num_apps()).map(|i| self.app_apl(i)).collect();
        let total: f64 = self.app_num.iter().sum();
        summarize(self.inst, per_app, total)
    }

    /// Move thread `j` to `tile`.
    ///
    /// # Panics
    /// Panics (debug) if the tile is occupied by a different thread.
    pub fn move_thread(&mut self, j: usize, tile: TileId) {
        let old = self.mapping.tile_of(j);
        if old == tile {
            return;
        }
        debug_assert!(self.inverse[tile.index()].is_none(), "target tile occupied");
        let app = self.tables.app_of(j);
        self.app_num[app] += self.tables.cost(j, tile.index()) - self.tables.cost(j, old.index());
        self.inverse[old.index()] = None;
        self.inverse[tile.index()] = Some(j);
        self.mapping.set_tile(j, tile);
        self.edits += 1;
    }

    /// Exchange the contents of two tiles (threads, or a thread and a
    /// hole). No-op if both are empty.
    pub fn swap_tiles(&mut self, a: TileId, b: TileId) {
        if a == b {
            return;
        }
        let ta = self.inverse[a.index()];
        let tb = self.inverse[b.index()];
        match (ta, tb) {
            (Some(ja), Some(jb)) => {
                let (ia, ib) = (self.tables.app_of(ja), self.tables.app_of(jb));
                self.app_num[ia] +=
                    self.tables.cost(ja, b.index()) - self.tables.cost(ja, a.index());
                self.app_num[ib] +=
                    self.tables.cost(jb, a.index()) - self.tables.cost(jb, b.index());
                self.mapping.set_tile(ja, b);
                self.mapping.set_tile(jb, a);
                self.inverse[a.index()] = Some(jb);
                self.inverse[b.index()] = Some(ja);
                self.edits += 1;
            }
            (Some(ja), None) => self.move_thread(ja, b),
            (None, Some(jb)) => self.move_thread(jb, a),
            (None, None) => {}
        }
    }

    /// Apply a permutation of the threads currently occupying `tiles`:
    /// after the call, the occupant that was on `tiles[perm[s]]` sits on
    /// `tiles[s]`. Used by the sliding-window search.
    pub fn apply_window_permutation(&mut self, tiles: &[TileId], perm: &[usize]) {
        debug_assert_eq!(tiles.len(), perm.len());
        let occupants: Vec<Option<usize>> = perm
            .iter()
            .map(|&p| self.inverse[tiles[p].index()])
            .collect();
        // Detach all first to avoid transient duplicate occupancy.
        for &t in tiles {
            if let Some(j) = self.inverse[t.index()] {
                let app = self.tables.app_of(j);
                self.app_num[app] -= self.tables.cost(j, t.index());
                self.inverse[t.index()] = None;
            }
        }
        for (s, occ) in occupants.iter().enumerate() {
            if let Some(j) = *occ {
                let t = tiles[s];
                let app = self.tables.app_of(j);
                self.app_num[app] += self.tables.cost(j, t.index());
                self.inverse[t.index()] = Some(j);
                self.mapping.set_tile(j, t);
            }
        }
        self.edits += 1;
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
    use proptest::prelude::*;

    fn instance(c: &[f64]) -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        ObmInstance::new(tl, vec![0, 8, 16], c.to_vec(), m)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Fuzz the incremental evaluator: an arbitrary sequence of tile
        /// swaps and window permutations must stay bit-consistent with
        /// from-scratch evaluation.
        #[test]
        fn incremental_consistent_under_random_ops(
            c in proptest::collection::vec(0.05f64..8.0, 16),
            ops in proptest::collection::vec((0usize..16, 0usize..16, 0usize..24), 1..60),
        ) {
            let inst = instance(&c);
            let mut ev = IncrementalEvaluator::new(&inst, Mapping::identity(16));
            let perms = &crate::algorithms::PERMS4;
            for (i, (a, b, p)) in ops.iter().enumerate() {
                if i % 3 == 2 {
                    // window permutation over 4 distinct tiles derived
                    // from (a, b)
                    let tiles = [
                        noc_model::TileId(*a),
                        noc_model::TileId((*a + 5) % 16),
                        noc_model::TileId((*b + 9) % 16),
                        noc_model::TileId((*b + 13) % 16),
                    ];
                    let distinct = tiles
                        .iter()
                        .collect::<std::collections::HashSet<_>>()
                        .len();
                    if distinct == 4 {
                        ev.apply_window_permutation(&tiles, &perms[*p]);
                    }
                } else {
                    ev.swap_tiles(noc_model::TileId(*a), noc_model::TileId(*b));
                }
                let scratch = evaluate(&inst, ev.mapping());
                prop_assert!((scratch.max_apl - ev.max_apl()).abs() < 1e-9);
                prop_assert!(
                    (scratch.g_apl * inst.total_volume() - ev.total_latency()).abs() < 1e-6
                );
                prop_assert!(ev.mapping().is_valid_for(&inst));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    /// The paper's Figure 5 example: 4×4 mesh, four 4-thread apps with
    /// cache rates .1/.2/.3/.4 and no memory traffic.
    pub(crate) fn fig5_instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        let m = vec![0.0; 16];
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, m)
    }

    /// An optimal Figure 5(a)-style mapping: within each app, the 0.1-rate
    /// thread goes to a corner, 0.2/0.3 to edges, 0.4 to a center tile.
    fn fig5_good_mapping(inst: &ObmInstance) -> Mapping {
        let tl = inst.tiles();
        // classify tiles by TC value
        let mut corners = vec![];
        let mut edges = vec![];
        let mut centers = vec![];
        for k in 0..16 {
            let t = TileId(k);
            let tc = tl.tc(t);
            if (tc - 12.9375).abs() < 1e-9 {
                corners.push(t);
            } else if (tc - 10.9375).abs() < 1e-9 {
                edges.push(t);
            } else {
                centers.push(t);
            }
        }
        assert_eq!((corners.len(), edges.len(), centers.len()), (4, 8, 4));
        let mut assign = vec![TileId(0); 16];
        for app in 0..4 {
            assign[app * 4] = corners[app]; // rate .1
            assign[app * 4 + 1] = edges[2 * app]; // rate .2
            assign[app * 4 + 2] = edges[2 * app + 1]; // rate .3
            assign[app * 4 + 3] = centers[app]; // rate .4
        }
        Mapping::new(assign)
    }

    /// A "balanced but bad" Figure 5(b)-style mapping: rates reversed
    /// (0.4 on corners, 0.1 on centers).
    fn fig5_bad_mapping(inst: &ObmInstance) -> Mapping {
        let good = fig5_good_mapping(inst);
        let mut assign = vec![TileId(0); 16];
        for app in 0..4 {
            assign[app * 4] = good.tile_of(app * 4 + 3);
            assign[app * 4 + 1] = good.tile_of(app * 4 + 2);
            assign[app * 4 + 2] = good.tile_of(app * 4 + 1);
            assign[app * 4 + 3] = good.tile_of(app * 4);
        }
        Mapping::new(assign)
    }

    #[test]
    fn fig5_exact_apls() {
        // The paper's printed values: 10.3375 cycles for the optimal
        // mapping, 11.5375 for the equal-but-bad one.
        let inst = fig5_instance();
        let good = evaluate(&inst, &fig5_good_mapping(&inst));
        for &d in &good.per_app {
            assert!((d - 10.3375).abs() < 1e-9, "good APL {d}");
        }
        assert!(good.dev_apl < 1e-9);
        let bad = evaluate(&inst, &fig5_bad_mapping(&inst));
        for &d in &bad.per_app {
            assert!((d - 11.5375).abs() < 1e-9, "bad APL {d}");
        }
        assert!(bad.dev_apl < 1e-9);
        // Both are perfectly "balanced" by dev-APL / min-to-max, yet one is
        // 1.2 cycles worse — the paper's argument for the max-APL metric.
        assert!(bad.max_apl > good.max_apl);
    }

    #[test]
    fn report_fields_consistent() {
        let inst = fig5_instance();
        let m = Mapping::identity(16);
        let r = evaluate(&inst, &m);
        assert_eq!(r.per_app.len(), 4);
        let max = r.per_app.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = r.per_app.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(r.max_apl, max);
        assert_eq!(r.min_apl, min);
        assert_eq!(r.per_app[r.argmax], r.max_apl);
        assert!(r.g_apl > 0.0);
        // g-APL is the volume-weighted mean of per-app APLs.
        let weighted: f64 = (0..4)
            .map(|i| r.per_app[i] * inst.app_volume(i))
            .sum::<f64>()
            / inst.total_volume();
        assert!((r.g_apl - weighted).abs() < 1e-9);
    }

    #[test]
    fn incremental_matches_scratch_after_swaps() {
        let inst = fig5_instance();
        let mut ev = IncrementalEvaluator::new(&inst, Mapping::identity(16));
        // A few tile swaps, cross-checking against from-scratch evaluation.
        let swaps = [(0usize, 5usize), (3, 12), (7, 7), (1, 15), (0, 3)];
        for &(a, b) in &swaps {
            ev.swap_tiles(TileId(a), TileId(b));
            let scratch = evaluate(&inst, ev.mapping());
            let inc = ev.report();
            for i in 0..4 {
                assert!(
                    (scratch.per_app[i] - inc.per_app[i]).abs() < 1e-9,
                    "app {i} diverged after swap ({a},{b})"
                );
            }
            assert!((scratch.max_apl - inc.max_apl).abs() < 1e-9);
        }
    }

    #[test]
    fn incremental_window_permutation_matches_scratch() {
        let inst = fig5_instance();
        let mut ev = IncrementalEvaluator::new(&inst, Mapping::identity(16));
        let tiles = [TileId(0), TileId(4), TileId(8), TileId(12)];
        let perm = [2usize, 0, 3, 1];
        ev.apply_window_permutation(&tiles, &perm);
        let scratch = evaluate(&inst, ev.mapping());
        let inc = ev.report();
        assert!((scratch.max_apl - inc.max_apl).abs() < 1e-9);
        // Thread formerly on tiles[2]=8 must now be on tiles[0]=0.
        assert_eq!(ev.thread_on(TileId(0)), Some(8));
    }

    #[test]
    fn window_permutation_with_holes() {
        // Instance with 3 threads on 4 tiles: one window slot is a hole.
        let mesh = Mesh::square(2);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tiles, vec![0, 3], vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]);
        let mut ev = IncrementalEvaluator::new(&inst, Mapping::identity(3));
        assert_eq!(ev.thread_on(TileId(3)), None);
        let window = [TileId(0), TileId(1), TileId(2), TileId(3)];
        // rotate: slot s takes occupant of slot s+1
        ev.apply_window_permutation(&window, &[1, 2, 3, 0]);
        assert_eq!(ev.thread_on(TileId(0)), Some(1));
        assert_eq!(ev.thread_on(TileId(1)), Some(2));
        assert_eq!(ev.thread_on(TileId(2)), None);
        assert_eq!(ev.thread_on(TileId(3)), Some(0));
        let scratch = evaluate(&inst, ev.mapping());
        assert!((scratch.max_apl - ev.max_apl()).abs() < 1e-9);
    }

    #[test]
    fn weighted_objective_prioritizes_heavy_weight_app() {
        // Weight 2 on app 0: the objective max(w_i d_i) is minimized when
        // app 0's APL is about half the others'. Check SSS responds.
        use crate::algorithms::{Mapper, SortSelectSwap};
        let inst = fig5_instance().with_app_weights(vec![2.0, 1.0, 1.0, 1.0]);
        let m = SortSelectSwap::default().map(&inst, 0);
        let r = evaluate(&inst, &m);
        assert!(
            r.per_app[0] < r.per_app[1],
            "prioritized app not faster: {:?}",
            r.per_app
        );
        // objective = max of weighted APLs
        let expect = (0..4)
            .map(|i| inst.app_weight(i) * r.per_app[i])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((r.max_apl - expect).abs() < 1e-12);
    }

    #[test]
    fn unit_weights_preserve_plain_max() {
        let inst = fig5_instance();
        assert!(!inst.is_weighted());
        let r = evaluate(&inst, &Mapping::identity(16));
        let plain = r.per_app.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(r.max_apl, plain);
    }

    #[test]
    fn move_thread_to_hole() {
        let mesh = Mesh::square(2);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tiles, vec![0, 2], vec![1.0, 2.0], vec![0.1, 0.2]);
        let mut ev = IncrementalEvaluator::new(&inst, Mapping::identity(2));
        ev.move_thread(0, TileId(3));
        assert_eq!(ev.mapping().tile_of(0), TileId(3));
        let scratch = evaluate(&inst, ev.mapping());
        assert!((scratch.max_apl - ev.max_apl()).abs() < 1e-12);
    }

    #[test]
    fn edits_counter_counts_effective_edits_only() {
        let inst = fig5_instance();
        let mut ev = IncrementalEvaluator::new(&inst, Mapping::identity(16));
        assert_eq!(ev.edits(), 0);
        ev.swap_tiles(TileId(3), TileId(3)); // same tile: no-op
        ev.move_thread(0, TileId(0)); // already there: no-op
        assert_eq!(ev.edits(), 0);
        ev.swap_tiles(TileId(0), TileId(5));
        assert_eq!(ev.edits(), 1);
        ev.apply_window_permutation(
            &[TileId(0), TileId(4), TileId(8), TileId(12)],
            &[1, 2, 3, 0],
        );
        assert_eq!(ev.edits(), 2);
    }

    #[test]
    fn swap_into_hole_counts_one_edit() {
        // 2 threads on 4 tiles: a swap delegating through move_thread must
        // count exactly once; swapping two holes not at all.
        let mesh = Mesh::square(2);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tiles, vec![0, 2], vec![1.0, 2.0], vec![0.1, 0.2]);
        let mut ev = IncrementalEvaluator::new(&inst, Mapping::identity(2));
        ev.swap_tiles(TileId(0), TileId(3)); // thread ↔ hole: one edit
        assert_eq!(ev.edits(), 1);
        ev.swap_tiles(TileId(0), TileId(2)); // hole ↔ hole: no edit
        assert_eq!(ev.edits(), 1);
    }

    #[test]
    fn emit_delta_reports_edits_and_objective() {
        use noc_telemetry::RingSink;
        let inst = fig5_instance();
        let mut ev = IncrementalEvaluator::new(&inst, Mapping::identity(16));
        ev.swap_tiles(TileId(1), TileId(14));
        let mut sink = RingSink::new(8);
        ev.emit_delta(&mut sink, -0.25);
        let events: Vec<_> = sink.solver_events().collect();
        assert_eq!(events.len(), 1);
        match events[0] {
            SolverEvent::EvalDelta {
                edits,
                objective,
                delta,
            } => {
                assert_eq!(*edits, 1);
                assert!((objective - ev.max_apl()).abs() < 1e-12);
                assert_eq!(*delta, -0.25);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
