//! Closed-loop online remapping (DESIGN.md §14): the paper's §IV.B
//! argument — SSS is fast enough to re-run whenever runtime statistics
//! drift — made executable against the simulator's own telemetry.
//!
//! [`RemapController`] implements [`noc_sim::SwapController`]: plugged
//! into [`Network::run_controlled`](noc_sim::Network::run_controlled) it
//! observes every flushed measurement window, re-estimates per-thread
//! request rates from the per-source packet counters, detects when a
//! realized per-application APL drifts past a configurable threshold
//! from its mapping-time baseline, re-solves warm-started from the
//! incumbent under a migration-penalized objective, and — when the
//! penalized score strictly improves — swaps the mapping at that window
//! boundary, mid-simulation, without draining the network.
//!
//! The controller is a deterministic state machine
//! (§14.1: `Calibrate → Monitor → {Resolve} → Cooldown → Calibrate`):
//! its decisions are a pure function of the window stream, so a fixed
//! simulation seed yields a bit-identical run, remap cycles and final
//! mapping (pinned by `tests/remap.rs`).

use crate::eval::evaluate;
use crate::objective::{
    migration_distance, refine_for_objective, threads_moved, MigrationPenalized, MinMaxApl,
};
use crate::problem::{Mapping, ObmInstance};
use noc_metrics::MetricsHandle;
use noc_model::{Mesh, TileId};
use noc_sim::SourceCounters;
use noc_telemetry::WindowRecord;

/// Tuning knobs of the online controller. All fields have conservative
/// defaults; construct with `RemapConfig::default()` and override.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapConfig {
    /// Relative per-application APL drift (vs. the post-mapping
    /// baseline) that arms a re-solve.
    pub drift_threshold: f64,
    /// Migration penalty per Manhattan hop of thread movement, in
    /// APL cycles (the [`MigrationPenalized`] weight).
    pub migration_weight: f64,
    /// Minimum packets an application must eject in a window for that
    /// window's APL to count (noise gate).
    pub min_window_packets: u64,
    /// Measurement windows averaged into the post-(re)mapping baseline.
    pub calibration_windows: u32,
    /// Measurement windows to hold off after a re-solve (accepted or
    /// not) before re-calibrating and re-arming.
    pub cooldown_windows: u32,
    /// Hard cap on accepted remaps per run.
    pub max_remaps: u32,
    /// EWMA smoothing factor for per-source rate re-estimation
    /// (`est ← α·observed + (1−α)·est`, `α ∈ (0, 1]`).
    pub rate_ewma: f64,
    /// Pass budget of the warm-started pairwise-exchange re-solver.
    pub refine_passes: usize,
}

impl Default for RemapConfig {
    fn default() -> Self {
        RemapConfig {
            drift_threshold: 0.15,
            migration_weight: 0.02,
            min_window_packets: 32,
            calibration_windows: 2,
            cooldown_windows: 2,
            max_remaps: 8,
            rate_ewma: 0.5,
            refine_passes: 64,
        }
    }
}

/// A rejected [`RemapController`] construction.
#[derive(Debug, Clone, PartialEq)]
pub enum RemapError {
    /// The mapping is not valid for the instance.
    InvalidMapping,
    /// The mesh does not have the instance's tile count.
    MeshMismatch {
        /// Tiles on the supplied mesh.
        mesh_tiles: usize,
        /// Tiles the instance expects.
        instance_tiles: usize,
    },
    /// A config field is outside its domain (named in the message).
    BadConfig(&'static str),
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::InvalidMapping => {
                write!(f, "mapping is not valid for the instance")
            }
            RemapError::MeshMismatch {
                mesh_tiles,
                instance_tiles,
            } => write!(
                f,
                "mesh has {mesh_tiles} tiles but the instance has {instance_tiles}"
            ),
            RemapError::BadConfig(what) => write!(f, "invalid remap config: {what}"),
        }
    }
}

impl std::error::Error for RemapError {}

/// One accepted mid-run mapping swap.
#[derive(Debug, Clone, PartialEq)]
pub struct RemapEvent {
    /// Cycle the swap was applied at (the flushed window's end; packets
    /// spawned from this cycle on use the new mapping).
    pub cycle: u64,
    /// Index of the triggering [`WindowRecord`].
    pub window: u64,
    /// Application whose drift armed the re-solve.
    pub app: usize,
    /// Its realized APL in the triggering window.
    pub realized_apl: f64,
    /// Its post-mapping baseline APL.
    pub baseline_apl: f64,
    /// Relative drift `|realized − baseline| / baseline`.
    pub drift: f64,
    /// Threads on a different tile after the swap.
    pub threads_moved: usize,
    /// Total Manhattan hops those threads travelled.
    pub migration_cost: u64,
    /// Analytic max-APL of the incumbent under the re-estimated rates.
    pub predicted_before: f64,
    /// Analytic max-APL of the accepted mapping under the same rates.
    pub predicted_after: f64,
}

/// §14.1 controller state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Accumulating the per-app baseline over the next N windows.
    Calibrating(u32),
    /// Armed: comparing realized APLs against the baseline.
    Monitoring,
    /// Holding off after a re-solve for N more windows.
    Cooldown(u32),
}

/// The closed-loop online remapping controller. See the module docs.
#[derive(Debug, Clone)]
pub struct RemapController {
    cfg: RemapConfig,
    mesh: Mesh,
    /// Mapping-time per-thread rates (per kilocycle) — the denominators
    /// of the rate re-estimation.
    base_c: Vec<f64>,
    base_m: Vec<f64>,
    /// Current instance estimate (mapping-time instance until the first
    /// accepted re-solve, then rebuilt with re-estimated rates).
    inst: ObmInstance,
    /// Incumbent mapping (what the sources currently fly under).
    mapping: Mapping,
    state: State,
    /// Per-app latency/packet sums being accumulated into a baseline.
    baseline_lat: Vec<f64>,
    baseline_pkts: Vec<u64>,
    /// Fixed per-app baseline APL (0 = app was silent while calibrating).
    baseline: Vec<f64>,
    /// Cumulative per-source (cache, memory) packet counts at the
    /// previous window.
    prev_counts: Vec<(u64, u64)>,
    /// EWMA per-source cache / memory request rate estimates
    /// (packets per kilocycle) — tracked per class so a workload whose
    /// cache/memory *mix* shifts (not just its magnitude) re-solves
    /// against the right cost model.
    est_c: Vec<f64>,
    est_m: Vec<f64>,
    events: Vec<RemapEvent>,
    /// Re-solves triggered (accepted or rejected) — solver-effort gauge.
    solves: u64,
    /// Write-only runtime metrics sink (DESIGN.md §17): `remap_*`
    /// counters, the `remap_migrated_threads` histogram and the
    /// `remap/resolve` span. Disabled by default; never read back, so
    /// controller decisions are unchanged by it.
    metrics: MetricsHandle,
}

impl RemapController {
    /// Build a controller for `inst` currently running `mapping` on
    /// `mesh`, with default tuning.
    pub fn new(inst: ObmInstance, mapping: Mapping, mesh: Mesh) -> Result<Self, RemapError> {
        Self::with_config(inst, mapping, mesh, RemapConfig::default())
    }

    /// Build a controller with explicit tuning.
    pub fn with_config(
        inst: ObmInstance,
        mapping: Mapping,
        mesh: Mesh,
        cfg: RemapConfig,
    ) -> Result<Self, RemapError> {
        if !mapping.is_valid_for(&inst) {
            return Err(RemapError::InvalidMapping);
        }
        if mesh.num_tiles() != inst.num_tiles() {
            return Err(RemapError::MeshMismatch {
                mesh_tiles: mesh.num_tiles(),
                instance_tiles: inst.num_tiles(),
            });
        }
        if !(cfg.drift_threshold > 0.0 && cfg.drift_threshold.is_finite()) {
            return Err(RemapError::BadConfig(
                "drift_threshold must be finite and > 0",
            ));
        }
        if !(cfg.migration_weight >= 0.0 && cfg.migration_weight.is_finite()) {
            return Err(RemapError::BadConfig(
                "migration_weight must be finite and >= 0",
            ));
        }
        if !(cfg.rate_ewma > 0.0 && cfg.rate_ewma <= 1.0) {
            return Err(RemapError::BadConfig("rate_ewma must be in (0, 1]"));
        }
        if cfg.calibration_windows == 0 {
            return Err(RemapError::BadConfig("calibration_windows must be >= 1"));
        }
        let n = inst.num_threads();
        let a = inst.num_apps();
        let base_c: Vec<f64> = (0..n).map(|j| inst.cache_rate(j)).collect();
        let base_m: Vec<f64> = (0..n).map(|j| inst.mem_rate(j)).collect();
        Ok(RemapController {
            cfg,
            mesh,
            est_c: base_c.clone(),
            est_m: base_m.clone(),
            base_c,
            base_m,
            inst,
            mapping,
            state: State::Calibrating(0),
            baseline_lat: vec![0.0; a],
            baseline_pkts: vec![0; a],
            baseline: vec![0.0; a],
            prev_counts: vec![(0, 0); n],
            events: Vec::new(),
            solves: 0,
            metrics: MetricsHandle::disabled(),
        })
    }

    /// Attach a runtime-metrics handle (DESIGN.md §17). The controller
    /// then counts observed windows, state transitions, re-solves and
    /// accept/reject outcomes, records migrated-thread counts in the
    /// `remap_migrated_threads` histogram, and times each re-solve under
    /// the `remap/resolve` span. Metrics never influence its decisions.
    pub fn with_metrics(mut self, metrics: MetricsHandle) -> Self {
        self.metrics = metrics;
        self
    }

    /// Accepted remap events, in order.
    pub fn events(&self) -> &[RemapEvent] {
        &self.events
    }

    /// Number of accepted remaps.
    pub fn remap_count(&self) -> usize {
        self.events.len()
    }

    /// Re-solves triggered, including ones whose candidate was rejected.
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Total Manhattan hops migrated across all accepted remaps.
    pub fn total_migration_cost(&self) -> u64 {
        self.events.iter().map(|e| e.migration_cost).sum()
    }

    /// The incumbent mapping (final mapping once the run ends).
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The controller's current instance estimate (mapping-time rates
    /// until a re-solve, re-estimated rates after).
    pub fn instance(&self) -> &ObmInstance {
        &self.inst
    }

    /// Fold one window's per-source, per-class packet deltas into the
    /// EWMA rate estimates (packets per kilocycle).
    fn update_rates(&mut self, per_source: &[SourceCounters], width: u64) {
        let alpha = self.cfg.rate_ewma;
        for j in 0..self.est_c.len() {
            let (prev_c, prev_m) = self.prev_counts[j];
            let (total_c, total_m) = per_source
                .get(j)
                .map(|acc| (acc.cache.packets, acc.mem.packets))
                .unwrap_or((prev_c, prev_m));
            self.prev_counts[j] = (total_c, total_m);
            let observed_c = total_c.saturating_sub(prev_c) as f64 * 1000.0 / width as f64;
            let observed_m = total_m.saturating_sub(prev_m) as f64 * 1000.0 / width as f64;
            self.est_c[j] = alpha * observed_c + (1.0 - alpha) * self.est_c[j];
            self.est_m[j] = alpha * observed_m + (1.0 - alpha) * self.est_m[j];
        }
    }

    /// The instance with per-thread rates replaced by the current
    /// per-class estimates, each clamped to three decades around its
    /// mapping-time value (keeping every application's volume positive
    /// while letting the cache/memory *mix* drift freely — a thread that
    /// turns memory-bound re-solves against memory-bound costs).
    fn reestimated_instance(&self) -> ObmInstance {
        let n = self.inst.num_threads();
        let clamp = |est: f64, base: f64| {
            if base > 0.0 {
                est.clamp(base * 1e-3, base * 1e3)
            } else {
                est.max(0.0)
            }
        };
        let c: Vec<f64> = (0..n)
            .map(|j| clamp(self.est_c[j], self.base_c[j]))
            .collect();
        let m: Vec<f64> = (0..n)
            .map(|j| clamp(self.est_m[j], self.base_m[j]))
            .collect();
        let rebuilt = ObmInstance::new(
            self.inst.tiles().clone(),
            self.inst.boundaries().to_vec(),
            c,
            m,
        );
        if self.inst.is_weighted() {
            let weights = (0..self.inst.num_apps())
                .map(|i| self.inst.app_weight(i))
                .collect();
            rebuilt.with_app_weights(weights)
        } else {
            rebuilt
        }
    }

    /// Run the warm-started migration-penalized re-solve against the
    /// re-estimated instance. Returns the retarget vector when the
    /// candidate strictly beats the incumbent's penalized score.
    fn resolve(
        &mut self,
        trigger: (usize, f64, f64, f64),
        rec: &WindowRecord,
    ) -> Option<Vec<TileId>> {
        self.solves += 1;
        self.metrics.inc("remap_solves_total");
        let _span = self.metrics.span("remap/resolve");
        let inst = self.reestimated_instance();
        let objective = MigrationPenalized {
            base: MinMaxApl,
            reference: self.mapping.clone(),
            weight: self.cfg.migration_weight,
            mesh: self.mesh,
        };
        let incumbent_score = evaluate(&inst, &self.mapping).max_apl;
        let candidate = refine_for_objective(
            &inst,
            self.mapping.clone(),
            &objective,
            self.cfg.refine_passes,
        );
        let moved = threads_moved(&self.mapping, &candidate);
        let report = evaluate(&inst, &candidate);
        let candidate_score = report.max_apl
            + self.cfg.migration_weight
                * migration_distance(&self.mesh, &self.mapping, &candidate) as f64;
        if moved == 0 || candidate_score.total_cmp(&incumbent_score) != std::cmp::Ordering::Less {
            self.metrics.inc("remap_rejected_total");
            return None;
        }
        self.metrics.inc("remap_accepted_total");
        self.metrics.observe("remap_migrated_threads", moved as u64);
        let (app, realized, baseline, drift) = trigger;
        self.events.push(RemapEvent {
            cycle: rec.end_cycle,
            window: rec.index,
            app,
            realized_apl: realized,
            baseline_apl: baseline,
            drift,
            threads_moved: moved,
            migration_cost: migration_distance(&self.mesh, &self.mapping, &candidate),
            predicted_before: incumbent_score,
            predicted_after: report.max_apl,
        });
        self.mapping = candidate;
        self.inst = inst;
        let tiles = (0..self.mapping.num_threads())
            .map(|j| self.mapping.tile_of(j))
            .collect();
        Some(tiles)
    }
}

impl noc_sim::SwapController for RemapController {
    fn on_window(
        &mut self,
        record: &WindowRecord,
        per_source: &[SourceCounters],
    ) -> Option<Vec<TileId>> {
        // Warmup windows carry transient latencies and no measured
        // per-source counts; drain windows carry stragglers only.
        if !record.phase.is_measure() {
            return None;
        }
        let width = record.width();
        if width == 0 {
            return None;
        }
        self.update_rates(per_source, width);
        self.metrics.inc("remap_windows_total");
        match self.state {
            State::Calibrating(seen) => {
                for (i, acc) in record.groups.iter().enumerate() {
                    if i < self.baseline_lat.len() {
                        self.baseline_lat[i] += acc.total_latency;
                        self.baseline_pkts[i] += acc.packets;
                    }
                }
                if seen + 1 >= self.cfg.calibration_windows {
                    for i in 0..self.baseline.len() {
                        self.baseline[i] = if self.baseline_pkts[i] > 0 {
                            self.baseline_lat[i] / self.baseline_pkts[i] as f64
                        } else {
                            0.0
                        };
                    }
                    self.state = State::Monitoring;
                    self.metrics.inc("remap_state_transitions_total");
                } else {
                    self.state = State::Calibrating(seen + 1);
                }
                None
            }
            State::Monitoring => {
                if self.events.len() >= self.cfg.max_remaps as usize {
                    return None;
                }
                // Worst relative drift among apps with a trusted window.
                let mut trigger: Option<(usize, f64, f64, f64)> = None;
                for (i, acc) in record.groups.iter().enumerate() {
                    if acc.packets < self.cfg.min_window_packets {
                        continue;
                    }
                    let baseline = match self.baseline.get(i) {
                        Some(&b) if b > 0.0 => b,
                        _ => continue,
                    };
                    let realized = acc.apl();
                    let drift = (realized - baseline).abs() / baseline;
                    let worse = match trigger {
                        Some((_, _, _, best)) => drift > best,
                        None => drift > self.cfg.drift_threshold,
                    };
                    if worse {
                        trigger = Some((i, realized, baseline, drift));
                    }
                }
                let t = trigger?;
                let swap = self.resolve(t, record);
                // Hold off either way: an accepted swap needs a fresh
                // baseline; a rejected one should not be retried every
                // window while the drift persists.
                self.state = State::Cooldown(self.cfg.cooldown_windows);
                self.metrics.inc("remap_state_transitions_total");
                swap
            }
            State::Cooldown(left) => {
                if left > 1 {
                    self.state = State::Cooldown(left - 1);
                } else {
                    self.baseline_lat.iter_mut().for_each(|v| *v = 0.0);
                    self.baseline_pkts.iter_mut().for_each(|v| *v = 0);
                    self.state = State::Calibrating(0);
                    self.metrics.inc("remap_state_transitions_total");
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Mapper, SortSelectSwap};
    use noc_model::{LatencyParams, MemoryControllers, TileLatencies};
    use noc_sim::SwapController;
    use noc_telemetry::Phase;

    fn instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        // Two 8-thread apps; app 0 front-loads its traffic on threads 0–3.
        let c = vec![
            40.0, 40.0, 40.0, 40.0, 4.0, 4.0, 4.0, 4.0, 12.0, 12.0, 12.0, 12.0, 12.0, 12.0, 12.0,
            12.0,
        ];
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        ObmInstance::new(tiles, vec![0, 8, 16], c, m)
    }

    fn controller() -> RemapController {
        let inst = instance();
        let mapping = SortSelectSwap::default().map(&inst, 0);
        RemapController::new(inst, mapping, Mesh::square(4)).expect("valid controller")
    }

    /// A synthetic measure-phase window where app `i` ejects
    /// `pkts[i]` packets at `apl[i]` cycles average.
    fn window(index: u64, start: u64, width: u64, apl: &[f64], pkts: &[u64]) -> WindowRecord {
        let mut rec = WindowRecord::empty(index, start, start + width, Phase::Measure, apl.len());
        for (i, g) in rec.groups.iter_mut().enumerate() {
            for _ in 0..pkts[i] {
                g.record(apl[i].round() as u64, 2, 1, apl[i].round() as u64);
            }
        }
        rec
    }

    /// Per-source cumulative counters with `count` packets each,
    /// split between the classes like the test instance's rates
    /// (`m = 0.15·c`).
    fn sources(n: usize, count: u64) -> Vec<SourceCounters> {
        let mut acc = SourceCounters::default();
        let mem = count * 15 / 115;
        for _ in 0..count.saturating_sub(mem) {
            acc.cache.record(10, 2, 1, 8);
        }
        for _ in 0..mem {
            acc.mem.record(10, 2, 1, 8);
        }
        vec![acc; n]
    }

    #[test]
    fn construction_validates() {
        let inst = instance();
        let mapping = SortSelectSwap::default().map(&inst, 0);
        assert!(matches!(
            RemapController::new(instance(), Mapping::identity(3), Mesh::square(4)),
            Err(RemapError::InvalidMapping)
        ));
        assert!(matches!(
            RemapController::new(instance(), mapping.clone(), Mesh::square(8)),
            Err(RemapError::MeshMismatch { .. })
        ));
        let bad = RemapConfig {
            drift_threshold: 0.0,
            ..RemapConfig::default()
        };
        assert!(matches!(
            RemapController::with_config(inst, mapping, Mesh::square(4), bad),
            Err(RemapError::BadConfig(_))
        ));
    }

    #[test]
    fn ignores_non_measure_windows() {
        let mut ctrl = controller();
        let mut rec = window(0, 0, 1000, &[10.0, 10.0], &[100, 100]);
        rec.phase = Phase::Warmup;
        assert_eq!(ctrl.on_window(&rec, &sources(16, 50)), None);
        assert!(
            matches!(ctrl.state, State::Calibrating(0)),
            "no state advance"
        );
    }

    #[test]
    fn steady_windows_never_remap() {
        let mut ctrl = controller();
        let per_source = sources(16, 0);
        for w in 0..20 {
            let rec = window(w, w * 1000, 1000, &[10.0, 10.0], &[100, 100]);
            assert_eq!(ctrl.on_window(&rec, &per_source), None, "window {w}");
        }
        assert_eq!(ctrl.remap_count(), 0);
        assert_eq!(ctrl.solves(), 0);
    }

    #[test]
    fn drifted_app_triggers_an_accepted_swap() {
        let mut ctrl = controller();
        let start = ctrl.mapping().clone();
        // Two calibration windows at the analytic operating point.
        let calm = [10.0, 10.0];
        assert_eq!(
            ctrl.on_window(&window(0, 0, 1000, &calm, &[100, 100]), &sources(16, 30)),
            None
        );
        assert_eq!(
            ctrl.on_window(&window(1, 1000, 1000, &calm, &[100, 100]), &sources(16, 60)),
            None
        );
        // App 0's realized APL jumps 80% and its sources go hot; the
        // rate flip (heavy half ↔ light half) makes the incumbent
        // placement analytically wrong, so the re-solve must move
        // threads and return a retarget vector.
        let mut per_source = sources(16, 60);
        for (j, acc) in per_source.iter_mut().enumerate() {
            let extra = if (4..8).contains(&j) { 400 } else { 10 };
            for _ in 0..extra {
                acc.cache.record(18, 3, 1, 12);
            }
        }
        let swap = ctrl.on_window(
            &window(2, 2000, 1000, &[18.0, 10.0], &[200, 100]),
            &per_source,
        );
        let tiles = swap.expect("drift must trigger an accepted remap");
        assert_eq!(tiles.len(), 16);
        assert_eq!(ctrl.remap_count(), 1);
        let ev = &ctrl.events()[0];
        assert_eq!(ev.app, 0);
        assert_eq!(ev.cycle, 3000);
        assert!(ev.drift > 0.15);
        assert!(ev.threads_moved > 0);
        assert!(ev.migration_cost > 0);
        assert!(ev.predicted_after < ev.predicted_before);
        assert_ne!(ctrl.mapping().as_slice(), start.as_slice());
        // Cooldown: the very next drifted window must not re-trigger.
        let again = ctrl.on_window(
            &window(3, 3000, 1000, &[18.0, 10.0], &[200, 100]),
            &per_source,
        );
        assert_eq!(again, None);
        assert_eq!(ctrl.remap_count(), 1);
    }

    #[test]
    fn max_remaps_caps_accepted_swaps() {
        let inst = instance();
        let mapping = SortSelectSwap::default().map(&inst, 0);
        let cfg = RemapConfig {
            max_remaps: 0,
            ..RemapConfig::default()
        };
        let mut ctrl =
            RemapController::with_config(inst, mapping, Mesh::square(4), cfg).expect("valid");
        let calm = [10.0, 10.0];
        ctrl.on_window(&window(0, 0, 1000, &calm, &[100, 100]), &sources(16, 30));
        ctrl.on_window(&window(1, 1000, 1000, &calm, &[100, 100]), &sources(16, 60));
        let swap = ctrl.on_window(
            &window(2, 2000, 1000, &[30.0, 10.0], &[200, 100]),
            &sources(16, 90),
        );
        assert_eq!(swap, None);
        assert_eq!(ctrl.remap_count(), 0);
    }
}
