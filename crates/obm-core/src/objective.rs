//! Pluggable mapping objectives (DESIGN.md §14.3).
//!
//! The paper's formulation fixes one objective — minimize the maximum
//! per-application APL (Eq. 6) — but the machinery around it (SSS, the
//! portfolio, the online controller) only needs *a* scalar to minimize.
//! [`Objective`] is that seam: a pure function from an evaluated mapping
//! (its [`AplReport`], the mapping itself, and the instance) to a
//! lower-is-better score.
//!
//! Implementations:
//!
//! * [`MinMaxApl`] — the paper's objective. Its score is **bit-identical**
//!   to [`AplReport::max_apl`] (it *is* that field), so every pre-existing
//!   golden stays valid when it is selected; `tests/properties.rs` pins
//!   the identity by proptest.
//! * [`MaxMinBalance`] — the per-application APL spread `max − min`, the
//!   "balance" criterion the paper's Figure 5 warns about: a mapping can
//!   be perfectly balanced yet uniformly slow, so this objective is for
//!   ablations, not for reproducing the paper's numbers.
//! * [`Energy`] — analytic dynamic NoC power (mW) of the induced traffic,
//!   mirroring `noc-power`'s `analytic_power` (Marcon et al.,
//!   arXiv 0710.4738 motivates energy-aware mapping objectives).
//! * [`MigrationPenalized`] — wraps any base objective and adds
//!   `weight × Σ_j manhattan(reference(j), mapping(j))`, the thread-
//!   migration cost the online [`RemapController`](crate::remap)
//!   charges a candidate remapping.
//!
//! [`ObjectiveSpec`] is the serializable / CLI-parsable selector
//! (`--objective min-max-apl|max-min-balance|energy`) that builds the
//! corresponding boxed objective.

use crate::eval::AplReport;
use crate::problem::{Mapping, ObmInstance};
use noc_model::Mesh;
use noc_power::PowerParams;
use serde::{Deserialize, Serialize};

/// A mapping objective: evaluated report → lower-is-better scalar.
///
/// Implementations must be pure (no interior state, no randomness): the
/// portfolio engine scores candidates from multiple worker threads and
/// relies on identical inputs producing identical bits.
pub trait Objective: Send + Sync + std::fmt::Debug {
    /// Short stable name (used in logs and solver telemetry).
    fn name(&self) -> &'static str;

    /// Score the mapping; smaller is better.
    fn score(&self, inst: &ObmInstance, mapping: &Mapping, report: &AplReport) -> f64;

    /// `true` iff [`score`](Self::score) returns exactly
    /// `report.max_apl` for every input — the flag the hot paths use to
    /// keep the pre-objective-API code paths (and their bit-exact
    /// goldens) when the paper's objective is selected.
    fn is_min_max_apl(&self) -> bool {
        false
    }
}

/// The paper's Eq. (6) objective: minimize `max_i w_i·d_i`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinMaxApl;

impl Objective for MinMaxApl {
    fn name(&self) -> &'static str {
        "min-max-apl"
    }

    fn score(&self, _inst: &ObmInstance, _mapping: &Mapping, report: &AplReport) -> f64 {
        report.max_apl
    }

    fn is_min_max_apl(&self) -> bool {
        true
    }
}

/// Minimize the per-application APL spread `max_i d_i − min_i d_i`.
///
/// This is the "balance only" criterion the paper's Figure 5 argues
/// against: both the optimal and the uniformly-bad mapping there have
/// zero spread. Provided for ablations against [`MinMaxApl`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxMinBalance;

impl Objective for MaxMinBalance {
    fn name(&self) -> &'static str {
        "max-min-balance"
    }

    fn score(&self, _inst: &ObmInstance, _mapping: &Mapping, report: &AplReport) -> f64 {
        report.max_apl - report.min_apl
    }
}

/// Minimize analytic dynamic NoC power (mW) of the mapped traffic.
///
/// Computes exactly what `noc_power::analytic_power` reports as
/// `dynamic_mw` for the loads the mapping induces (per-kilocycle instance
/// rates ÷ 1000, each thread on its mapped tile): expected flit-hop
/// energy per cycle from the closed-form hop averages `H̄C`/`H̄M` of the
/// latency model. Static power is mapping-independent and omitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Energy {
    /// Technology point (defaults to [`PowerParams::dsent_45nm`]).
    pub params: PowerParams,
    /// Mean flits per packet (3.0 for the paper's even request/reply mix).
    pub flits_per_packet: f64,
}

impl Default for Energy {
    fn default() -> Self {
        Energy {
            params: PowerParams::dsent_45nm(),
            flits_per_packet: 3.0,
        }
    }
}

impl Objective for Energy {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn score(&self, inst: &ObmInstance, mapping: &Mapping, _report: &AplReport) -> f64 {
        let tl = inst.tiles();
        let n = inst.num_tiles() as f64;
        let mut energy_pj_per_cycle = 0.0;
        for j in 0..inst.num_threads() {
            let tile = mapping.tile_of(j);
            // Rates are per kilocycle in the instance; per cycle here.
            let cache_rate = inst.cache_rate(j) / 1000.0;
            let mem_rate = inst.mem_rate(j) / 1000.0;
            let hc = tl.cache_hops(tile);
            // 1/N of cache packets stay on-tile: E[routers] = hc + (N-1)/N.
            let cache_routers = hc + (n - 1.0) / n;
            energy_pj_per_cycle += cache_rate
                * self.flits_per_packet
                * (cache_routers * self.params.router_energy_pj + hc * self.params.link_energy_pj);
            let hm = tl.mem_hops(tile);
            let mem_routers = if hm > 0.0 { hm + 1.0 } else { 0.0 };
            energy_pj_per_cycle += mem_rate
                * self.flits_per_packet
                * (mem_routers * self.params.router_energy_pj + hm * self.params.link_energy_pj);
        }
        // pJ/cycle → mW at the configured clock (identical arithmetic to
        // noc_power::analytic_power, pinned by the unit test below).
        let cycle_seconds = 1.0 / (self.params.frequency_ghz * 1e9);
        energy_pj_per_cycle * 1e-12 / cycle_seconds * 1e3
    }
}

/// Wraps a base objective with a thread-migration penalty against a
/// reference mapping: `base + weight × Σ_j manhattan(ref(j), new(j))`.
///
/// The online controller scores candidate remappings with this so a
/// marginal APL gain never justifies mass migration; `weight` is in the
/// base objective's units per Manhattan hop moved.
#[derive(Debug, Clone)]
pub struct MigrationPenalized<O> {
    /// The wrapped objective.
    pub base: O,
    /// The incumbent mapping migrations are charged against.
    pub reference: Mapping,
    /// Penalty per Manhattan hop of thread movement.
    pub weight: f64,
    /// Mesh geometry the Manhattan distances live on.
    pub mesh: Mesh,
}

/// Total Manhattan distance threads travel going from `from` to `to`,
/// over the common thread-index prefix of the two mappings.
pub fn migration_distance(mesh: &Mesh, from: &Mapping, to: &Mapping) -> u64 {
    let n = from.num_threads().min(to.num_threads());
    (0..n)
        .map(|j| {
            mesh.coord(from.tile_of(j))
                .manhattan(mesh.coord(to.tile_of(j))) as u64
        })
        .sum()
}

/// Number of threads on different tiles in `from` vs `to` (common prefix).
pub fn threads_moved(from: &Mapping, to: &Mapping) -> usize {
    let n = from.num_threads().min(to.num_threads());
    (0..n).filter(|&j| from.tile_of(j) != to.tile_of(j)).count()
}

impl<O: Objective> Objective for MigrationPenalized<O> {
    fn name(&self) -> &'static str {
        "migration-penalized"
    }

    fn score(&self, inst: &ObmInstance, mapping: &Mapping, report: &AplReport) -> f64 {
        self.base.score(inst, mapping, report)
            + self.weight * migration_distance(&self.mesh, &self.reference, mapping) as f64
    }
}

/// Serializable / CLI-parsable objective selector (`--objective …`).
///
/// The default is the paper's [`MinMaxApl`]; [`Energy`] is built at the
/// default 45 nm technology point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ObjectiveSpec {
    /// The paper's Eq. (6) objective (the default).
    #[default]
    MinMaxApl,
    /// Per-application APL spread (`max − min`).
    MaxMinBalance,
    /// Analytic dynamic NoC power at the default technology point.
    Energy,
}

impl ObjectiveSpec {
    /// Stable lower-case name (the CLI spelling).
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveSpec::MinMaxApl => "min-max-apl",
            ObjectiveSpec::MaxMinBalance => "max-min-balance",
            ObjectiveSpec::Energy => "energy",
        }
    }

    /// Build the boxed objective this spec selects.
    pub fn build(self) -> Box<dyn Objective> {
        match self {
            ObjectiveSpec::MinMaxApl => Box::new(MinMaxApl),
            ObjectiveSpec::MaxMinBalance => Box::new(MaxMinBalance),
            ObjectiveSpec::Energy => Box::new(Energy::default()),
        }
    }

    /// Whether this spec selects the paper's objective (the bit-exact
    /// fast path everywhere).
    pub fn is_min_max_apl(self) -> bool {
        self == ObjectiveSpec::MinMaxApl
    }

    /// Score `mapping` under this spec, evaluating it from scratch.
    pub fn score(self, inst: &ObmInstance, mapping: &Mapping) -> f64 {
        let report = crate::eval::evaluate(inst, mapping);
        match self {
            // Identical bits to `evaluate().max_apl`.
            ObjectiveSpec::MinMaxApl => report.max_apl,
            ObjectiveSpec::MaxMinBalance => MaxMinBalance.score(inst, mapping, &report),
            ObjectiveSpec::Energy => Energy::default().score(inst, mapping, &report),
        }
    }
}

impl std::fmt::Display for ObjectiveSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ObjectiveSpec {
    type Err = String;

    /// Parse a CLI spelling (`min-max-apl` / `apl`, `max-min-balance` /
    /// `balance`, `energy`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "min-max-apl" | "apl" | "minmax" => Ok(ObjectiveSpec::MinMaxApl),
            "max-min-balance" | "balance" => Ok(ObjectiveSpec::MaxMinBalance),
            "energy" => Ok(ObjectiveSpec::Energy),
            other => Err(format!(
                "unknown objective '{other}' (expected min-max-apl, max-min-balance or energy)"
            )),
        }
    }
}

/// Deterministic objective-aware polish: best-improvement pairwise tile
/// exchange, warm-started from `start`.
///
/// Each pass scans every tile pair `(a, b)` in ascending index order,
/// scores the exchanged mapping under `obj` (full report + score — cheap
/// at instance sizes ≤ 64), and applies the strictly best improving
/// exchange; it stops when a pass finds no strict improvement or after
/// `max_passes` passes. Ties break toward the earliest pair scanned, so
/// the result is a pure function of `(inst, start, obj)` — this is both
/// the default generic-objective path of
/// [`Mapper::map_objective`](crate::algorithms::Mapper::map_objective)
/// and the warm-started re-solver of the online controller.
pub fn refine_for_objective(
    inst: &ObmInstance,
    start: Mapping,
    obj: &dyn Objective,
    max_passes: usize,
) -> Mapping {
    let k = inst.num_tiles();
    let mut ev = crate::eval::IncrementalEvaluator::new(inst, start);
    let mut current = obj.score(inst, ev.mapping(), &ev.report());
    for _ in 0..max_passes {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..k {
            for b in (a + 1)..k {
                let (ta, tb) = (noc_model::TileId(a), noc_model::TileId(b));
                let before = ev.edits();
                ev.swap_tiles(ta, tb);
                if ev.edits() == before {
                    // Two holes: nothing to score, nothing to undo.
                    continue;
                }
                let s = obj.score(inst, ev.mapping(), &ev.report());
                ev.swap_tiles(ta, tb);
                let improves = match best {
                    Some((_, _, bs)) => s.total_cmp(&bs) == std::cmp::Ordering::Less,
                    None => s.total_cmp(&current) == std::cmp::Ordering::Less,
                };
                if improves {
                    best = Some((a, b, s));
                }
            }
        }
        match best {
            Some((a, b, s)) => {
                ev.swap_tiles(noc_model::TileId(a), noc_model::TileId(b));
                current = s;
            }
            None => break,
        }
    }
    ev.into_mapping()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Mapper, SortSelectSwap};
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, TileId, TileLatencies};

    fn instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let c: Vec<f64> = (0..16).map(|j| 0.5 + 0.31 * j as f64).collect();
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        ObmInstance::new(tiles, vec![0, 6, 11, 16], c, m)
    }

    #[test]
    fn min_max_apl_is_the_report_field_bitwise() {
        let inst = instance();
        let m = Mapping::identity(16);
        let r = evaluate(&inst, &m);
        assert_eq!(
            MinMaxApl.score(&inst, &m, &r).to_bits(),
            r.max_apl.to_bits()
        );
        assert_eq!(
            ObjectiveSpec::MinMaxApl.score(&inst, &m).to_bits(),
            r.max_apl.to_bits()
        );
        assert!(MinMaxApl.is_min_max_apl());
        assert!(!MaxMinBalance.is_min_max_apl());
    }

    #[test]
    fn energy_matches_noc_power_analytic() {
        let inst = instance();
        let mesh = Mesh::square(4);
        let m = SortSelectSwap::default().map(&inst, 0);
        let r = evaluate(&inst, &m);
        let obj = Energy::default();
        let loads: Vec<noc_power::PlacedLoad> = (0..inst.num_threads())
            .map(|j| noc_power::PlacedLoad {
                tile: m.tile_of(j),
                cache_rate: inst.cache_rate(j) / 1000.0,
                mem_rate: inst.mem_rate(j) / 1000.0,
            })
            .collect();
        let direct =
            noc_power::analytic_power(&obj.params, &mesh, inst.tiles(), &loads, 3.0).dynamic_mw;
        assert!((obj.score(&inst, &m, &r) - direct).abs() < 1e-12);
    }

    #[test]
    fn energy_prefers_central_heavy_threads() {
        // One heavy cache thread: center placement must score lower
        // (less energy) than corner placement.
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let inst = ObmInstance::new(tiles, vec![0, 1], vec![10.0], vec![0.0]);
        let obj = Energy::default();
        let corner = Mapping::new(vec![TileId(0)]);
        let center = Mapping::new(vec![TileId(5)]);
        let rc = evaluate(&inst, &corner);
        let rn = evaluate(&inst, &center);
        assert!(obj.score(&inst, &center, &rn) < obj.score(&inst, &corner, &rc));
    }

    #[test]
    fn migration_penalty_charges_manhattan_hops() {
        let inst = instance();
        let mesh = Mesh::square(4);
        let reference = Mapping::identity(16);
        let obj = MigrationPenalized {
            base: MinMaxApl,
            reference: reference.clone(),
            weight: 0.5,
            mesh,
        };
        let r0 = evaluate(&inst, &reference);
        assert_eq!(
            obj.score(&inst, &reference, &r0).to_bits(),
            r0.max_apl.to_bits(),
            "no movement, no penalty"
        );
        // Swap threads on tiles 0 and 15: each moves 6 Manhattan hops.
        let mut tiles: Vec<TileId> = (0..16).map(TileId).collect();
        tiles.swap(0, 15);
        let moved = Mapping::new(tiles);
        assert_eq!(migration_distance(&mesh, &reference, &moved), 12);
        assert_eq!(threads_moved(&reference, &moved), 2);
        let rm = evaluate(&inst, &moved);
        assert!((obj.score(&inst, &moved, &rm) - (rm.max_apl + 0.5 * 12.0)).abs() < 1e-12);
    }

    #[test]
    fn spec_round_trips_and_builds() {
        for spec in [
            ObjectiveSpec::MinMaxApl,
            ObjectiveSpec::MaxMinBalance,
            ObjectiveSpec::Energy,
        ] {
            let parsed: ObjectiveSpec = spec.name().parse().expect("round trip");
            assert_eq!(parsed, spec);
            assert_eq!(spec.build().name(), spec.name());
        }
        assert_eq!(
            "balance".parse::<ObjectiveSpec>().expect("alias"),
            ObjectiveSpec::MaxMinBalance
        );
        assert!("latency".parse::<ObjectiveSpec>().is_err());
        assert_eq!(ObjectiveSpec::default(), ObjectiveSpec::MinMaxApl);
    }

    #[test]
    fn refine_never_worsens_and_is_deterministic() {
        let inst = instance();
        let start = Mapping::identity(16);
        let before = ObjectiveSpec::MaxMinBalance.score(&inst, &start);
        let a = refine_for_objective(&inst, start.clone(), &MaxMinBalance, 32);
        let b = refine_for_objective(&inst, start, &MaxMinBalance, 32);
        assert_eq!(a.as_slice(), b.as_slice(), "refinement must be pure");
        let after = ObjectiveSpec::MaxMinBalance.score(&inst, &a);
        assert!(after <= before, "refine worsened: {before} -> {after}");
        assert!(a.is_valid_for(&inst));
    }
}
