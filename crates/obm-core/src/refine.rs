//! Local-search refinement: pairwise-swap hill climbing applicable to any
//! mapping (an extension beyond the paper — SSS's sliding window only
//! explores windows of the TC-sorted tile list; this pass explores *all*
//! tile pairs until a local optimum of the min-max objective is reached).

use crate::algorithms::Mapper;
use crate::eval::IncrementalEvaluator;
use crate::problem::{Mapping, ObmInstance};
use noc_model::TileId;

/// Outcome of a polish run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolishStats {
    /// Improving swaps applied.
    pub swaps: usize,
    /// Full O(N²) scans performed.
    pub rounds: usize,
    /// Whether a swap-local optimum was certified (no improving pair in
    /// the final scan).
    pub local_optimum: bool,
}

/// Hill-climb `mapping` by greedy first-improvement tile swaps until no
/// pair of tiles improves, or `max_rounds` full scans have run.
///
/// Acceptance is lexicographic on `(max_i w_i·d_i, total latency)`: a swap
/// that leaves the binding application untouched but lowers total latency
/// is also taken. Pure max-only acceptance stalls on the min-max
/// objective's plateaus (only the binding application's swaps ever
/// matter); the secondary criterion drains the non-binding applications,
/// which routinely unlocks further max-APL improvements.
pub fn polish(inst: &ObmInstance, mapping: Mapping, max_rounds: usize) -> (Mapping, PolishStats) {
    let mut ev = IncrementalEvaluator::new(inst, mapping);
    let n = inst.num_tiles();
    let mut stats = PolishStats {
        swaps: 0,
        rounds: 0,
        local_optimum: false,
    };
    let better = |cand: (f64, f64), cur: (f64, f64)| -> bool {
        cand.0 + 1e-12 < cur.0 || (cand.0 < cur.0 + 1e-12 && cand.1 + 1e-9 < cur.1)
    };
    for _ in 0..max_rounds {
        stats.rounds += 1;
        let mut improved = false;
        let mut cur = (ev.max_apl(), ev.total_latency());
        for a in 0..n {
            for b in (a + 1)..n {
                let (ta, tb) = (TileId(a), TileId(b));
                // Swapping two empty tiles is a no-op; skip cheaply.
                if ev.thread_on(ta).is_none() && ev.thread_on(tb).is_none() {
                    continue;
                }
                ev.swap_tiles(ta, tb);
                let cand = (ev.max_apl(), ev.total_latency());
                if better(cand, cur) {
                    cur = cand;
                    stats.swaps += 1;
                    improved = true;
                } else {
                    ev.swap_tiles(ta, tb); // revert
                }
            }
        }
        if !improved {
            stats.local_optimum = true;
            break;
        }
    }
    (ev.into_mapping(), stats)
}

/// Mapper combinator: run an inner mapper, then [`polish`] its result.
#[derive(Debug, Clone, Copy)]
pub struct Polished<M> {
    /// The mapper producing the initial solution.
    pub inner: M,
    /// Scan budget handed to [`polish`] (a handful suffices — each scan is
    /// `O(N²)` swap trials).
    pub max_rounds: usize,
}

impl<M: Mapper> Polished<M> {
    /// Polish `inner`'s result with up to 8 scans (ample in practice).
    pub fn new(inner: M) -> Self {
        Polished {
            inner,
            max_rounds: 8,
        }
    }
}

impl<M: Mapper> Mapper for Polished<M> {
    fn name(&self) -> &'static str {
        "Polished"
    }

    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping {
        let initial = self.inner.map(inst, seed);
        polish(inst, initial, self.max_rounds).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{BruteForce, Global, RandomMapper, SortSelectSwap};
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16])
    }

    #[test]
    fn polish_never_hurts_and_certifies_local_optimum() {
        let inst = instance();
        let start = RandomMapper.map(&inst, 5);
        let before = evaluate(&inst, &start).max_apl;
        let (polished, stats) = polish(&inst, start, 50);
        let after = evaluate(&inst, &polished).max_apl;
        assert!(after <= before + 1e-12);
        assert!(stats.local_optimum);
        assert!(stats.swaps > 0, "a random start should be improvable");
        // Certified: one more scan finds nothing.
        let (_, again) = polish(&inst, polished, 1);
        assert_eq!(again.swaps, 0);
    }

    #[test]
    fn polished_random_improves_substantially() {
        // Swap-only descent on a min-max objective stalls well above the
        // global optimum (improving the non-binding applications is never
        // accepted) — an instructive contrast with SSS, which restructures
        // whole windows. Still, polishing must recover most of the gap
        // between a random start and the optimum (10.3375).
        let inst = instance();
        let mapper = Polished::new(RandomMapper);
        let mut gain = 0.0;
        for s in 0..6 {
            let raw = evaluate(&inst, &RandomMapper.map(&inst, s)).max_apl;
            let pol = evaluate(&inst, &mapper.map(&inst, s)).max_apl;
            assert!(pol <= raw + 1e-12);
            gain += (raw - pol) / (raw - 10.3375).max(1e-9);
        }
        assert!(
            gain / 6.0 > 0.5,
            "polish recovered only {:.0}% of the optimality gap",
            gain / 6.0 * 100.0
        );
    }

    #[test]
    fn polishing_sss_changes_little() {
        let inst = instance();
        let sss = SortSelectSwap::default().map(&inst, 0);
        let before = evaluate(&inst, &sss).max_apl;
        let (_, stats) = polish(&inst, sss, 10);
        // SSS already hits the optimum here; polish must confirm it.
        assert_eq!(stats.swaps, 0, "SSS result was improvable by {before}");
    }

    #[test]
    fn polished_global_beats_global_on_balance() {
        let inst = instance();
        let glob = evaluate(&inst, &Global.map(&inst, 0));
        let pol = evaluate(&inst, &Polished::new(Global).map(&inst, 0));
        assert!(pol.max_apl <= glob.max_apl + 1e-12);
    }

    #[test]
    fn polish_respects_exact_optimum() {
        let mesh = Mesh::new(2, 3);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let inst = ObmInstance::new(
            tl,
            vec![0, 3, 6],
            vec![1.0, 4.0, 2.0, 3.0, 5.0, 0.5],
            vec![0.1; 6],
        );
        let best = evaluate(&inst, &BruteForce.map(&inst, 0)).max_apl;
        let pol = evaluate(&inst, &Polished::new(RandomMapper).map(&inst, 1)).max_apl;
        assert!(pol >= best - 1e-9);
    }
}
