//! Batched structure-of-arrays evaluation engine.
//!
//! Every solver's inner loop is Eq. (13) placement-cost arithmetic:
//! `cost(j, k) = c_j·TC(k) + m_j·TM(k)`. Computed on demand that is three
//! scattered loads plus two multiplies per probe; across a solve the same
//! `(j, k)` pairs are probed millions of times. [`EvalTables`] flattens
//! the full `N×K` cost matrix once per instance (≤ 64×64 f64 = 32 KB —
//! comfortably L1-resident) next to structure-of-arrays copies of the
//! rate vectors, the thread→application map, and per-application volume
//! reciprocals, so a probe becomes one indexed load. (The evaluator
//! paths keep the APL *division* — see DESIGN.md §13.4: the reciprocal
//! form differs by 1 ulp and would desynchronize SA's RNG stream; the
//! reciprocals serve consumers without a bit-identity contract.)
//!
//! [`BatchEvaluator`] evaluates whole candidate batches against the
//! tables. Its kernel is chunked **over mappings**: for a fixed thread
//! `j` the cost row is shared by every mapping in the chunk, and the
//! per-lane accumulators are independent, so the inner loop is branch
//! free and the additions pipeline across lanes instead of serializing
//! into one dependent chain (the autovectorization-friendly shape; the
//! measured throughput in `BENCH_PR6.json` is the verification).
//!
//! # Determinism contract
//!
//! * `EvalTables` stores exactly the bits `placement_cost` would compute:
//!   the same `c[j]*tc(k) + m[j]*tm(k)` expression evaluated once at
//!   build time.
//! * [`BatchEvaluator::eval_one`], [`BatchEvaluator::eval_many`] and
//!   [`BatchEvaluator::eval_many_into`] (the buffer-recycling batch
//!   entry point — zero allocations per batch in the steady state)
//!   accumulate each application's numerator in ascending thread order —
//!   the same floating-point operations in the same order as
//!   [`evaluate`](crate::evaluate) — so their reports are bit-identical
//!   to per-mapping `evaluate()`, pinned by `tests/eval_batch.rs`.
//! * [`BatchEvaluator::eval_many_parallel`] splits the batch into
//!   fixed-size chunks regardless of worker count; workers race for
//!   chunk indices but each chunk's result lands in its own slot, so the
//!   output is bit-identical for any number of workers.

use crate::eval::{summarize, AplReport};
use crate::problem::{Mapping, ObmInstance};

/// Mappings per kernel chunk. Large enough that the per-chunk setup
/// (collecting tile slices) amortizes, small enough that the `A × CHUNK`
/// accumulator block stays in L1 alongside the cost matrix.
const CHUNK: usize = 32;

/// Mappings per parallel work unit. Fixed — never derived from the worker
/// count — so the chunk boundaries (and therefore every chunk's result)
/// are identical no matter how many workers race.
const PAR_CHUNK: usize = 256;

/// Precomputed flat evaluation tables for one [`ObmInstance`] — the
/// structure-of-arrays mirror of the instance that every solver hot path
/// reads instead of recomputing Eq. (13). Built lazily once per instance
/// via [`ObmInstance::eval_tables`].
#[derive(Debug, Clone)]
pub struct EvalTables {
    num_threads: usize,
    num_tiles: usize,
    /// Flat `N×K` placement-cost matrix: `cost[j*K + k]` holds exactly
    /// the bits of `placement_cost(j, TileId(k))`.
    cost: Vec<f64>,
    /// SoA copy of the cache request rates `c_j`.
    c: Vec<f64>,
    /// SoA copy of the memory request rates `m_j`.
    m: Vec<f64>,
    /// Thread → application index (O(1) instead of a boundary search).
    app_of: Vec<u32>,
    /// Application thread boundaries (`A+1` entries).
    app_start: Vec<u32>,
    /// Per-application request volumes (the APL denominators).
    volume: Vec<f64>,
    /// Per-application `1/volume` — turns the APL division into a
    /// multiply on the most-called query path.
    inv_volume: Vec<f64>,
    /// Per-application priority weights.
    weights: Vec<f64>,
}

impl EvalTables {
    /// Build the tables from an instance. `O(N·K)` time and space.
    pub fn build(inst: &ObmInstance) -> Self {
        let n = inst.num_threads();
        let k = inst.num_tiles();
        let a = inst.num_apps();
        let tiles = inst.tiles();
        let mut cost = Vec::with_capacity(n * k);
        for j in 0..n {
            for t in 0..k {
                cost.push(inst.placement_cost(j, noc_model::TileId(t)));
            }
        }
        let mut app_of = vec![0u32; n];
        for i in 0..a {
            for j in inst.app_threads(i) {
                app_of[j] = i as u32;
            }
        }
        debug_assert_eq!(tiles.len(), k);
        EvalTables {
            num_threads: n,
            num_tiles: k,
            cost,
            c: (0..n).map(|j| inst.cache_rate(j)).collect(),
            m: (0..n).map(|j| inst.mem_rate(j)).collect(),
            app_of,
            app_start: inst.boundaries().iter().map(|&b| b as u32).collect(),
            volume: (0..a).map(|i| inst.app_volume(i)).collect(),
            inv_volume: (0..a).map(|i| inst.inv_app_volume(i)).collect(),
            weights: (0..a).map(|i| inst.app_weight(i)).collect(),
        }
    }

    /// Number of threads `N`.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Number of tiles `K`.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// Number of applications `A`.
    #[inline]
    pub fn num_apps(&self) -> usize {
        self.app_start.len() - 1
    }

    /// Eq. (13) cost of thread `j` on tile index `k` — one indexed load,
    /// bit-identical to [`ObmInstance::placement_cost`].
    #[inline]
    pub fn cost(&self, j: usize, k: usize) -> f64 {
        self.cost[j * self.num_tiles + k]
    }

    /// The full cost row of thread `j` (all `K` tiles).
    #[inline]
    pub fn cost_row(&self, j: usize) -> &[f64] {
        &self.cost[j * self.num_tiles..(j + 1) * self.num_tiles]
    }

    /// Application owning thread `j` (O(1) table load).
    #[inline]
    pub fn app_of(&self, j: usize) -> usize {
        self.app_of[j] as usize
    }

    /// Thread range of application `i`.
    #[inline]
    pub fn app_range(&self, i: usize) -> std::ops::Range<usize> {
        self.app_start[i] as usize..self.app_start[i + 1] as usize
    }

    /// SoA cache request rate `c_j`.
    #[inline]
    pub fn cache_rate(&self, j: usize) -> f64 {
        self.c[j]
    }

    /// SoA memory request rate `m_j`.
    #[inline]
    pub fn mem_rate(&self, j: usize) -> f64 {
        self.m[j]
    }

    /// Request volume of application `i`.
    #[inline]
    pub fn volume(&self, i: usize) -> f64 {
        self.volume[i]
    }

    /// Reciprocal volume `1/volume_i`.
    #[inline]
    pub fn inv_volume(&self, i: usize) -> f64 {
        self.inv_volume[i]
    }

    /// Priority weight of application `i`.
    #[inline]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }
}

/// Batch evaluator over an instance's [`EvalTables`].
///
/// Construction is cheap (the tables are cached on the instance); hold
/// one for the duration of a solve and feed it candidate batches.
#[derive(Debug, Clone, Copy)]
pub struct BatchEvaluator<'a> {
    inst: &'a ObmInstance,
    tables: &'a EvalTables,
}

impl<'a> BatchEvaluator<'a> {
    /// Create an evaluator for `inst`, building the instance's tables on
    /// first use.
    pub fn new(inst: &'a ObmInstance) -> Self {
        BatchEvaluator {
            inst,
            tables: inst.eval_tables(),
        }
    }

    /// The underlying tables.
    #[inline]
    pub fn tables(&self) -> &'a EvalTables {
        self.tables
    }

    /// Evaluate one mapping — bit-identical to
    /// [`evaluate`](crate::evaluate), reading the flat cost matrix
    /// instead of recomputing Eq. (13) per thread.
    pub fn eval_one(&self, mapping: &Mapping) -> AplReport {
        debug_assert!(mapping.is_valid_for(self.inst), "invalid mapping");
        let t = self.tables;
        let k = t.num_tiles;
        let tiles = mapping.as_slice();
        let a = t.num_apps();
        let mut per_app = Vec::with_capacity(a);
        let mut total_num = 0.0;
        for i in 0..a {
            let range = t.app_range(i);
            let mut num = 0.0;
            for (j, tile) in tiles[range.clone()].iter().enumerate() {
                num += t.cost[(range.start + j) * k + tile.index()];
            }
            total_num += num;
            per_app.push(num / t.volume[i]);
        }
        summarize(self.inst, per_app, total_num)
    }

    /// Evaluate a batch of mappings. Returns one report per mapping, in
    /// order, each bit-identical to what [`evaluate`](crate::evaluate)
    /// would produce. Allocating convenience wrapper over
    /// [`eval_many_into`](Self::eval_many_into) — callers evaluating
    /// batches in a loop should hold a report buffer and use that
    /// directly.
    pub fn eval_many(&self, mappings: &[Mapping]) -> Vec<AplReport> {
        let mut out = Vec::with_capacity(mappings.len());
        self.eval_many_into(mappings, &mut out);
        out
    }

    /// Evaluate a batch of mappings into a reusable report buffer.
    ///
    /// `out` is resized to `mappings.len()`; reports already present are
    /// overwritten **in place**, reusing their `per_app` allocations, so
    /// a caller that feeds successive batches through the same buffer
    /// pays zero allocations per batch in the steady state (the per-lane
    /// `Vec` malloc is the single largest cost of the allocating path —
    /// see DESIGN.md §13). Every report is bit-identical to what
    /// [`evaluate`](crate::evaluate) would produce, whether its buffers
    /// were recycled or freshly allocated.
    pub fn eval_many_into(&self, mappings: &[Mapping], out: &mut Vec<AplReport>) {
        let t = self.tables;
        let a = t.num_apps();
        let n_apps = a as f64;
        let total_volume = self.inst.total_volume();
        out.truncate(mappings.len());
        let reuse = out.len();
        out.reserve(mappings.len() - reuse);
        let mut nums = vec![0.0f64; a * CHUNK];
        let mut lanes: Vec<&[noc_model::TileId]> = Vec::with_capacity(CHUNK);
        let mut totals = [0.0f64; CHUNK];
        let mut means = [0.0f64; CHUNK];
        let mut devs = [0.0f64; CHUNK];
        for (ci, chunk) in mappings.chunks(CHUNK).enumerate() {
            self.chunk_numerators(chunk, &mut nums, &mut lanes);
            let mc = chunk.len();
            // The whole-report statistics are computed column-wise across
            // the chunk — every loop below applies, per lane, exactly the
            // scalar operation sequence of `summarize` in the same order
            // (ascending application index), so each lane's bits match the
            // per-mapping path while the compiler vectorizes across lanes.
            totals[..mc].fill(0.0);
            for i in 0..a {
                let nrow = &nums[i * mc..(i + 1) * mc];
                for (tot, &v) in totals[..mc].iter_mut().zip(nrow) {
                    *tot += v;
                }
            }
            // Numerator → per-app APL: the same `num / volume` division.
            for i in 0..a {
                let vol = t.volume[i];
                for v in &mut nums[i * mc..(i + 1) * mc] {
                    *v /= vol;
                }
            }
            means[..mc].fill(0.0);
            for i in 0..a {
                let nrow = &nums[i * mc..(i + 1) * mc];
                for (s, &d) in means[..mc].iter_mut().zip(nrow) {
                    *s += d;
                }
            }
            for s in &mut means[..mc] {
                *s /= n_apps;
            }
            devs[..mc].fill(0.0);
            for i in 0..a {
                let nrow = &nums[i * mc..(i + 1) * mc];
                for (s, (&d, &mean)) in devs[..mc].iter_mut().zip(nrow.iter().zip(&means[..mc])) {
                    let e = d - mean;
                    *s += e * e;
                }
            }
            for s in &mut devs[..mc] {
                *s = (*s / n_apps).sqrt();
            }
            for lane in 0..mc {
                let g = ci * CHUNK + lane;
                if g < reuse && out[g].per_app.len() == a {
                    // Steady-state: overwrite the recycled report in place,
                    // fusing the per-app refill with the max/min scan.
                    let r = &mut out[g];
                    let (mut max_apl, mut min_apl, mut argmax) =
                        (f64::NEG_INFINITY, f64::INFINITY, 0);
                    for (i, slot) in r.per_app.iter_mut().enumerate() {
                        let d = nums[i * mc + lane];
                        *slot = d;
                        let weighted = t.weights[i] * d;
                        if weighted > max_apl {
                            max_apl = weighted;
                            argmax = i;
                        }
                        min_apl = min_apl.min(d);
                    }
                    r.max_apl = max_apl;
                    r.min_apl = min_apl;
                    r.argmax = argmax;
                    r.dev_apl = devs[lane];
                    r.g_apl = totals[lane] / total_volume;
                } else {
                    let mut per_app = Vec::with_capacity(a);
                    let (mut max_apl, mut min_apl, mut argmax) =
                        (f64::NEG_INFINITY, f64::INFINITY, 0);
                    for i in 0..a {
                        let d = nums[i * mc + lane];
                        per_app.push(d);
                        let weighted = t.weights[i] * d;
                        if weighted > max_apl {
                            max_apl = weighted;
                            argmax = i;
                        }
                        min_apl = min_apl.min(d);
                    }
                    let report = AplReport {
                        per_app,
                        max_apl,
                        min_apl,
                        argmax,
                        dev_apl: devs[lane],
                        g_apl: totals[lane] / total_volume,
                    };
                    if g < reuse {
                        out[g] = report;
                    } else {
                        out.push(report);
                    }
                }
            }
        }
    }

    /// Compute only the objective (`max_i w_i·d_i`) for each mapping in
    /// the batch, appending into `out` without per-report allocations.
    /// Each value is bit-identical to `evaluate(inst, m).max_apl` — the
    /// fast path for Monte-Carlo candidate pools.
    pub fn objectives_into(&self, mappings: &[Mapping], out: &mut Vec<f64>) {
        let t = self.tables;
        let a = t.num_apps();
        out.reserve(mappings.len());
        let mut nums = vec![0.0f64; a * CHUNK];
        let mut lanes: Vec<&[noc_model::TileId]> = Vec::with_capacity(CHUNK);
        for chunk in mappings.chunks(CHUNK) {
            self.chunk_numerators(chunk, &mut nums, &mut lanes);
            let mc = chunk.len();
            for lane in 0..mc {
                // Mirror `summarize`'s max scan exactly (same comparison,
                // same order) so the bits match the full report.
                let mut max_apl = f64::NEG_INFINITY;
                for i in 0..a {
                    let weighted = t.weights[i] * (nums[i * mc + lane] / t.volume[i]);
                    if weighted > max_apl {
                        max_apl = weighted;
                    }
                }
                out.push(max_apl);
            }
        }
    }

    /// [`eval_many`](Self::eval_many) with an opt-in deterministic
    /// parallel path: the batch is cut into fixed [`PAR_CHUNK`]-sized
    /// chunks (independent of `workers`), workers race for chunk indices,
    /// and each chunk's reports land in the chunk's own slot — so the
    /// concatenated output is bit-identical at any worker count.
    pub fn eval_many_parallel(&self, mappings: &[Mapping], workers: usize) -> Vec<AplReport> {
        let workers = workers.max(1);
        if workers == 1 || mappings.len() <= PAR_CHUNK {
            return self.eval_many(mappings);
        }
        let chunks: Vec<&[Mapping]> = mappings.chunks(PAR_CHUNK).collect();
        let slots: Vec<std::sync::Mutex<Vec<AplReport>>> = chunks
            .iter()
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let this = *self;
        let chunks_ref = &chunks;
        let slots_ref = &slots;
        let next_ref = &next;
        crossbeam::thread::scope(move |scope| {
            for _ in 0..workers.min(chunks_ref.len()) {
                scope.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= chunks_ref.len() {
                        break;
                    }
                    let reports = this.eval_many(chunks_ref[i]);
                    match slots_ref[i].lock() {
                        Ok(mut slot) => *slot = reports,
                        Err(poisoned) => *poisoned.into_inner() = reports,
                    }
                });
            }
        })
        .expect("eval_many_parallel worker panicked");
        slots
            .into_iter()
            .flat_map(|s| match s.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            })
            .collect()
    }

    /// The chunked kernel: per-application numerators for every mapping
    /// in `chunk`, laid out `nums[i*chunk_len + lane]`.
    ///
    /// The chunk's tile assignments are first transposed into a compact
    /// `u32` buffer (`tidx[j*chunk_len + lane]`), so the hot loop reads
    /// both its index stream and its accumulators contiguously. The loop
    /// nest is (application, thread, lane): for a fixed thread the cost
    /// row is shared across lanes and each lane's accumulator is
    /// independent, so the inner loop has no branches (the `min` clamp is
    /// a no-op for valid mappings that lets the compiler drop the
    /// bounds-check) and the additions pipeline across lanes instead of
    /// serializing into one dependent chain — while each lane still sums
    /// its threads in ascending order, preserving bit-identity with the
    /// scalar path.
    fn chunk_numerators<'b>(
        &self,
        chunk: &'b [Mapping],
        nums: &mut [f64],
        lanes: &mut Vec<&'b [noc_model::TileId]>,
    ) {
        let t = self.tables;
        let a = t.num_apps();
        let k = t.num_tiles;
        let mc = chunk.len();
        lanes.clear();
        for m in chunk {
            debug_assert!(m.is_valid_for(self.inst), "invalid mapping in batch");
            lanes.push(m.as_slice());
        }
        for i in 0..a {
            let range = t.app_range(i);
            let (start, len) = (range.start, range.len());
            let nrow = &mut nums[i * mc..(i + 1) * mc];
            let mut lane0 = 0;
            // Four lanes at a time: the accumulators live in registers
            // (four independent add chains instead of one), the per-lane
            // slices are pre-cut to the app's thread span so the `jj`
            // index needs no bounds check, and the `min` clamp is a no-op
            // for valid mappings that licenses dropping the row check.
            while lane0 + 8 <= mc {
                let s0 = &lanes[lane0][start..start + len];
                let s1 = &lanes[lane0 + 1][start..start + len];
                let s2 = &lanes[lane0 + 2][start..start + len];
                let s3 = &lanes[lane0 + 3][start..start + len];
                let s4 = &lanes[lane0 + 4][start..start + len];
                let s5 = &lanes[lane0 + 5][start..start + len];
                let s6 = &lanes[lane0 + 6][start..start + len];
                let s7 = &lanes[lane0 + 7][start..start + len];
                let mut acc = [0.0f64; 8];
                for jj in 0..len {
                    let row = &t.cost[(start + jj) * k..(start + jj + 1) * k];
                    acc[0] += row[s0[jj].index().min(k - 1)];
                    acc[1] += row[s1[jj].index().min(k - 1)];
                    acc[2] += row[s2[jj].index().min(k - 1)];
                    acc[3] += row[s3[jj].index().min(k - 1)];
                    acc[4] += row[s4[jj].index().min(k - 1)];
                    acc[5] += row[s5[jj].index().min(k - 1)];
                    acc[6] += row[s6[jj].index().min(k - 1)];
                    acc[7] += row[s7[jj].index().min(k - 1)];
                }
                nrow[lane0..lane0 + 8].copy_from_slice(&acc);
                lane0 += 8;
            }
            while lane0 < mc {
                let s = &lanes[lane0][start..start + len];
                let mut acc = 0.0f64;
                for jj in 0..len {
                    let row = &t.cost[(start + jj) * k..(start + jj + 1) * k];
                    acc += row[s[jj].index().min(k - 1)];
                }
                nrow[lane0] = acc;
                lane0 += 1;
            }
        }
    }
}

// SAFETY-free Sync/Send: BatchEvaluator is just two shared references.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileId, TileLatencies};

    fn instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let c: Vec<f64> = (0..16).map(|j| 0.1 + 0.37 * (j as f64)).collect();
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        ObmInstance::new(tiles, vec![0, 5, 11, 16], c, m)
    }

    #[test]
    fn cost_matrix_matches_placement_cost_bitwise() {
        let inst = instance();
        let t = inst.eval_tables();
        for j in 0..inst.num_threads() {
            for k in 0..inst.num_tiles() {
                assert_eq!(
                    t.cost(j, k).to_bits(),
                    inst.placement_cost(j, TileId(k)).to_bits(),
                    "cost[{j},{k}]"
                );
            }
            assert_eq!(t.cost_row(j).len(), inst.num_tiles());
            assert_eq!(t.cache_rate(j).to_bits(), inst.cache_rate(j).to_bits());
            assert_eq!(t.mem_rate(j).to_bits(), inst.mem_rate(j).to_bits());
            assert_eq!(t.app_of(j), inst.app_of_thread(j));
        }
        for i in 0..inst.num_apps() {
            assert_eq!(t.app_range(i), inst.app_threads(i));
            assert_eq!(t.volume(i).to_bits(), inst.app_volume(i).to_bits());
            assert_eq!(
                t.inv_volume(i).to_bits(),
                (1.0 / inst.app_volume(i)).to_bits()
            );
            assert_eq!(t.weight(i).to_bits(), inst.app_weight(i).to_bits());
        }
        assert_eq!(t.num_threads(), 16);
        assert_eq!(t.num_tiles(), 16);
        assert_eq!(t.num_apps(), 3);
    }

    #[test]
    fn eval_one_and_eval_many_match_scratch_bitwise() {
        use crate::algorithms::RandomMapper;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let inst = instance();
        let be = BatchEvaluator::new(&inst);
        let mut rng = SmallRng::seed_from_u64(9);
        let batch: Vec<Mapping> = (0..100)
            .map(|_| RandomMapper::draw(&inst, &mut rng))
            .collect();
        let many = be.eval_many(&batch);
        let mut objs = Vec::new();
        be.objectives_into(&batch, &mut objs);
        for ((m, r), &obj) in batch.iter().zip(&many).zip(&objs) {
            let scratch = evaluate(&inst, m);
            let one = be.eval_one(m);
            for (x, y) in scratch.per_app.iter().zip(&r.per_app) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(scratch.max_apl.to_bits(), r.max_apl.to_bits());
            assert_eq!(scratch.min_apl.to_bits(), r.min_apl.to_bits());
            assert_eq!(scratch.dev_apl.to_bits(), r.dev_apl.to_bits());
            assert_eq!(scratch.g_apl.to_bits(), r.g_apl.to_bits());
            assert_eq!(scratch.argmax, r.argmax);
            assert_eq!(scratch.max_apl.to_bits(), one.max_apl.to_bits());
            assert_eq!(scratch.max_apl.to_bits(), obj.to_bits());
        }
    }

    #[test]
    fn parallel_path_is_worker_count_invariant() {
        use crate::algorithms::RandomMapper;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let inst = instance();
        let be = BatchEvaluator::new(&inst);
        let mut rng = SmallRng::seed_from_u64(4);
        let batch: Vec<Mapping> = (0..700)
            .map(|_| RandomMapper::draw(&inst, &mut rng))
            .collect();
        let seq = be.eval_many(&batch);
        for workers in [1usize, 2, 4] {
            let par = be.eval_many_parallel(&batch, workers);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(
                    a.max_apl.to_bits(),
                    b.max_apl.to_bits(),
                    "workers={workers}"
                );
                for (x, y) in a.per_app.iter().zip(&b.per_app) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn spare_tiles_and_single_app_batches() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tiles, vec![0, 5], vec![1.0; 5], vec![0.1; 5]);
        let be = BatchEvaluator::new(&inst);
        let maps = vec![
            Mapping::identity(5),
            Mapping::new((0..5).map(|j| TileId(15 - j)).collect()),
        ];
        for (m, r) in maps.iter().zip(be.eval_many(&maps)) {
            let scratch = evaluate(&inst, m);
            assert_eq!(scratch.max_apl.to_bits(), r.max_apl.to_bits());
        }
    }
}
