//! Placement co-optimization (DESIGN.md §15): search over memory-controller
//! placements with the OBM solver in the inner loop.
//!
//! The paper fixes the chip — controllers in the corners of a mesh — and
//! optimizes the thread mapping. This module makes the *layout* a decision
//! variable too: an outer deterministic search proposes
//! [`ChipLayout`]s, rebuilds the `TC`/`TM` arrays with
//! [`TileLatencies::for_layout`], solves the induced OBM instance with a
//! caller-supplied inner solver, and keeps the layout whose solved
//! objective is best. Two outer strategies cover the practical range:
//!
//! * **exhaustive** — every `k`-subset of tiles, reduced by the mesh's
//!   symmetry group (D4 on square meshes, the Klein four-group on
//!   rectangles) so geometrically equivalent placements are solved once;
//! * **annealed** — simulated annealing over placements (move one
//!   controller to a free tile), with a memo table so revisited
//!   placements reuse their solved score (and the instance's PR 6
//!   [`EvalTables`](crate::batch::EvalTables) cache underneath).
//!
//! Both strategies are deterministic given the options' seeds, poll a
//! [`CancelToken`] between inner solves, and always score the
//! corner-default baseline so callers get the paper-default comparison
//! for free.

use crate::cancel::CancelToken;
use crate::eval::evaluate;
use crate::problem::{Mapping, ObmInstance};
use noc_metrics::{Counter, MetricsHandle};
use noc_model::{
    ChipLayout, LatencyParams, MemoryControllers, Mesh, TileId, TileLatencies, Topology,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Outer-loop strategy for [`co_optimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Score every symmetry-reduced `k`-subset of tiles.
    Exhaustive,
    /// Simulated annealing over placements with this many proposed moves.
    Annealed {
        /// Proposed controller moves (inner solves are memoized, so the
        /// number of solver calls is at most `iterations + 1`).
        iterations: usize,
    },
    /// [`Exhaustive`](SearchMode::Exhaustive) when the raw candidate count
    /// `C(num_tiles, k)` is at most `exhaustive_limit`, otherwise
    /// [`Annealed`](SearchMode::Annealed) with `sa_iterations` moves.
    Auto {
        /// Largest raw candidate count still searched exhaustively.
        exhaustive_limit: usize,
        /// Annealing budget when the limit is exceeded.
        sa_iterations: usize,
    },
}

impl Default for SearchMode {
    /// Exhaustive up to 4096 raw candidates (a 4×4 mesh with ≤ 4
    /// controllers), 400 annealing moves beyond that (an 8×8 mesh).
    fn default() -> Self {
        SearchMode::Auto {
            exhaustive_limit: 4096,
            sa_iterations: 400,
        }
    }
}

/// Options for [`co_optimize`].
#[derive(Debug, Clone)]
pub struct PlacementOptions {
    /// Number of memory controllers to place.
    pub num_controllers: usize,
    /// Topology the candidate layouts are built on.
    pub topology: Topology,
    /// Latency parameters used to rebuild `TC`/`TM` per layout.
    pub params: LatencyParams,
    /// Outer-loop strategy.
    pub mode: SearchMode,
    /// Seed for the outer annealing walk (unused by exhaustive search).
    pub seed: u64,
    /// Seed handed to the inner solver for every candidate layout (one
    /// fixed seed keeps candidate scores comparable and the whole search
    /// reproducible).
    pub inner_seed: u64,
    /// Cooperative cancellation, polled between inner solves.
    pub cancel: CancelToken,
    /// Write-only runtime metrics sink (DESIGN.md §17): the search
    /// counts scanned candidates, memo hits and fresh inner solves, and
    /// times each inner solve under the `placement/inner_solve` span.
    /// Disabled by default; never read back, so the search trajectory is
    /// unchanged by it.
    pub metrics: MetricsHandle,
}

impl PlacementOptions {
    /// Defaults: 4 controllers on a mesh, paper Table 2 latency
    /// parameters, [`SearchMode::default`], seed 1.
    pub fn new(num_controllers: usize) -> Self {
        PlacementOptions {
            num_controllers,
            topology: Topology::Mesh,
            params: LatencyParams::paper_table2(),
            mode: SearchMode::default(),
            seed: 1,
            inner_seed: 1,
            cancel: CancelToken::never(),
            metrics: MetricsHandle::disabled(),
        }
    }
}

/// A rejected or aborted placement search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementSearchError {
    /// `num_controllers` is zero.
    NoControllers,
    /// More controllers requested than the mesh has tiles.
    TooManyControllers {
        /// Requested controller count.
        requested: usize,
        /// Tiles on the mesh.
        num_tiles: usize,
    },
    /// The instance's tile count does not match the mesh.
    MeshMismatch {
        /// Tiles on the mesh being searched.
        mesh_tiles: usize,
        /// Tiles the instance's latency arrays cover.
        instance_tiles: usize,
    },
    /// The [`CancelToken`] fired before the search finished.
    Cancelled,
}

impl fmt::Display for PlacementSearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementSearchError::NoControllers => {
                write!(f, "placement search needs at least one controller")
            }
            PlacementSearchError::TooManyControllers {
                requested,
                num_tiles,
            } => write!(
                f,
                "cannot place {requested} controllers on a {num_tiles}-tile mesh"
            ),
            PlacementSearchError::MeshMismatch {
                mesh_tiles,
                instance_tiles,
            } => write!(
                f,
                "mesh has {mesh_tiles} tiles but the instance covers {instance_tiles}"
            ),
            PlacementSearchError::Cancelled => write!(f, "placement search cancelled"),
        }
    }
}

impl std::error::Error for PlacementSearchError {}

/// Result of [`co_optimize`]: the best layout found, its solved mapping,
/// and the corner-default baseline for comparison.
#[derive(Debug, Clone)]
pub struct PlacementOutcome {
    /// Best layout found (ties broken towards the earliest candidate in
    /// deterministic search order).
    pub layout: ChipLayout,
    /// Inner solver's mapping on the best layout.
    pub mapping: Mapping,
    /// Solved objective (weighted max-APL) on the best layout.
    pub objective: f64,
    /// The corner-default baseline layout (first `k` corner tiles).
    pub baseline_layout: ChipLayout,
    /// Inner solver's mapping on the baseline layout.
    pub baseline_mapping: Mapping,
    /// Solved objective on the baseline layout.
    pub baseline_objective: f64,
    /// Distinct placements actually solved (memo hits excluded).
    pub evaluated: usize,
    /// `true` when the outer loop ran exhaustively.
    pub exhaustive: bool,
}

impl PlacementOutcome {
    /// Relative improvement of the best layout over the baseline, in
    /// percent of the baseline objective.
    pub fn gain_pct(&self) -> f64 {
        if self.baseline_objective == 0.0 {
            0.0
        } else {
            100.0 * (self.baseline_objective - self.objective) / self.baseline_objective
        }
    }
}

/// The default inner solver: the paper's sort-select-swap heuristic
/// ([`SortSelectSwap`](crate::algorithms::SortSelectSwap)), scored by
/// weighted max-APL. Plug your own closure into [`co_optimize`] to search
/// with a different solver (the portfolio engine, SA, exact).
pub fn sss_inner(inst: &ObmInstance, seed: u64) -> (Mapping, f64) {
    use crate::algorithms::{Mapper, SortSelectSwap};
    let mapping = SortSelectSwap::default().map(inst, seed);
    let objective = evaluate(inst, &mapping).max_apl;
    (mapping, objective)
}

/// The corner-default baseline placement: the first `k` tiles of the
/// paper's corner set, extended by edge centers and then ascending tile
/// index when `k` exceeds the corner count. Deterministic for every `k`.
pub fn baseline_placement(mesh: &Mesh, k: usize) -> Vec<TileId> {
    let mut tiles: Vec<TileId> = MemoryControllers::corners(mesh).tiles().to_vec();
    for &t in MemoryControllers::edge_centers(mesh).tiles() {
        if !tiles.contains(&t) {
            tiles.push(t);
        }
    }
    for t in mesh.tiles() {
        if tiles.len() >= k {
            break;
        }
        if !tiles.contains(&t) {
            tiles.push(t);
        }
    }
    tiles.truncate(k);
    tiles.sort_unstable();
    tiles
}

/// Search memory-controller placements for the one whose *solved* OBM
/// objective is lowest.
///
/// `inst` supplies the workload (application boundaries, request rates,
/// weights); its latency arrays are rebuilt per candidate layout with
/// [`TileLatencies::for_layout`], so the instance may have been built for
/// any placement. `inner` is called once per distinct candidate with the
/// induced instance and `opts.inner_seed`, and must return a mapping and
/// its objective (lower is better) — see [`sss_inner`].
///
/// Deterministic: given equal options and an `inner` that is a pure
/// function of its arguments, the outcome is identical across runs.
pub fn co_optimize<F>(
    inst: &ObmInstance,
    mesh: &Mesh,
    opts: &PlacementOptions,
    mut inner: F,
) -> Result<PlacementOutcome, PlacementSearchError>
where
    F: FnMut(&ObmInstance, u64) -> (Mapping, f64),
{
    let n = mesh.num_tiles();
    let k = opts.num_controllers;
    if k == 0 {
        return Err(PlacementSearchError::NoControllers);
    }
    if k > n {
        return Err(PlacementSearchError::TooManyControllers {
            requested: k,
            num_tiles: n,
        });
    }
    if inst.num_tiles() != n {
        return Err(PlacementSearchError::MeshMismatch {
            mesh_tiles: n,
            instance_tiles: inst.num_tiles(),
        });
    }

    // Counters are pre-resolved once so the per-candidate hot path is a
    // lock-free atomic add (or a never-taken branch when disabled).
    let mut search = Search {
        inst,
        mesh,
        opts,
        inner: &mut inner,
        memo: HashMap::new(),
        evaluated: 0,
        c_candidates: opts.metrics.counter("placement_candidates_total"),
        c_memo_hits: opts.metrics.counter("placement_memo_hits_total"),
        c_inner_solves: opts.metrics.counter("placement_inner_solves_total"),
    };

    let baseline_tiles = baseline_placement(mesh, k);
    let (baseline_mapping, baseline_objective) = search.score(&baseline_tiles)?;
    let baseline_layout = search.layout(&baseline_tiles);

    let exhaustive = match opts.mode {
        SearchMode::Exhaustive => true,
        SearchMode::Annealed { .. } => false,
        SearchMode::Auto {
            exhaustive_limit, ..
        } => binomial(n, k).is_some_and(|c| c <= exhaustive_limit),
    };
    let (best_tiles, best_mapping, best_objective) = if exhaustive {
        search.run_exhaustive(k, &baseline_tiles, baseline_objective)?
    } else {
        let iterations = match opts.mode {
            SearchMode::Annealed { iterations } => iterations,
            SearchMode::Auto { sa_iterations, .. } => sa_iterations,
            SearchMode::Exhaustive => 0,
        };
        search.run_annealed(k, iterations, &baseline_tiles, baseline_objective)?
    };

    let layout = search.layout(&best_tiles);
    Ok(PlacementOutcome {
        layout,
        mapping: best_mapping.unwrap_or_else(|| baseline_mapping.clone()),
        objective: best_objective,
        baseline_layout,
        baseline_mapping,
        baseline_objective,
        evaluated: search.evaluated,
        exhaustive,
    })
}

/// Shared state of one `co_optimize` run.
struct Search<'a, F> {
    inst: &'a ObmInstance,
    mesh: &'a Mesh,
    opts: &'a PlacementOptions,
    inner: &'a mut F,
    /// Solved score per placement (sorted tile-index key); annealing
    /// revisits states, and geometric duplicates share a canonical key.
    memo: HashMap<Vec<usize>, (Mapping, f64)>,
    evaluated: usize,
    /// Pre-resolved metric counters (inert when metrics are disabled).
    c_candidates: Counter,
    c_memo_hits: Counter,
    c_inner_solves: Counter,
}

impl<F> Search<'_, F>
where
    F: FnMut(&ObmInstance, u64) -> (Mapping, f64),
{
    fn layout(&self, tiles: &[TileId]) -> ChipLayout {
        let mcs = MemoryControllers::try_custom(self.mesh, tiles.to_vec())
            .expect("search proposes only in-range, non-empty placements");
        ChipLayout::try_new(*self.mesh, self.opts.topology, mcs, Vec::new())
            .expect("healthy chip: no failed links to validate")
    }

    /// Solve the instance induced by placing controllers on `tiles`
    /// (memoized). Returns the mapping and objective.
    fn score(&mut self, tiles: &[TileId]) -> Result<(Mapping, f64), PlacementSearchError> {
        self.c_candidates.inc();
        let key: Vec<usize> = tiles.iter().map(|t| t.index()).collect();
        if let Some((m, v)) = self.memo.get(&key) {
            self.c_memo_hits.inc();
            return Ok((m.clone(), *v));
        }
        if self.opts.cancel.is_cancelled() {
            return Err(PlacementSearchError::Cancelled);
        }
        let layout = self.layout(tiles);
        let lat = TileLatencies::for_layout(&layout, self.opts.params);
        let c: Vec<f64> = (0..self.inst.num_threads())
            .map(|j| self.inst.cache_rate(j))
            .collect();
        let m: Vec<f64> = (0..self.inst.num_threads())
            .map(|j| self.inst.mem_rate(j))
            .collect();
        let mut induced = ObmInstance::new(lat, self.inst.boundaries().to_vec(), c, m);
        if self.inst.is_weighted() {
            let w: Vec<f64> = (0..self.inst.num_apps())
                .map(|i| self.inst.app_weight(i))
                .collect();
            induced = induced.with_app_weights(w);
        }
        self.c_inner_solves.inc();
        let span = self.opts.metrics.span("placement/inner_solve");
        let (mapping, objective) = (self.inner)(&induced, self.opts.inner_seed);
        drop(span);
        self.evaluated += 1;
        self.memo.insert(key, (mapping.clone(), objective));
        Ok((mapping, objective))
    }

    /// Exhaustive outer loop over symmetry-reduced `k`-subsets, in
    /// lexicographic order (first-found wins ties).
    fn run_exhaustive(
        &mut self,
        k: usize,
        baseline: &[TileId],
        baseline_objective: f64,
    ) -> Result<(Vec<TileId>, Option<Mapping>, f64), PlacementSearchError> {
        let transforms = symmetry_transforms(self.mesh);
        let mut best_tiles = baseline.to_vec();
        let mut best_mapping = None;
        let mut best = baseline_objective;
        let n = self.mesh.num_tiles();
        let mut combo: Vec<usize> = (0..k).collect();
        loop {
            if is_canonical(&combo, &transforms) {
                let tiles: Vec<TileId> = combo.iter().map(|&i| TileId(i)).collect();
                let (mapping, objective) = self.score(&tiles)?;
                if objective < best {
                    best = objective;
                    best_tiles = tiles;
                    best_mapping = Some(mapping);
                }
            }
            if !next_combination(&mut combo, n) {
                break;
            }
        }
        Ok((best_tiles, best_mapping, best))
    }

    /// Annealed outer loop: move one controller to a free tile per step,
    /// accept by Metropolis on the solved objective, track the best state
    /// ever seen. Starts from the baseline placement.
    fn run_annealed(
        &mut self,
        k: usize,
        iterations: usize,
        baseline: &[TileId],
        baseline_objective: f64,
    ) -> Result<(Vec<TileId>, Option<Mapping>, f64), PlacementSearchError> {
        let n = self.mesh.num_tiles();
        let mut rng = SmallRng::seed_from_u64(self.opts.seed);
        let mut state = baseline.to_vec();
        let mut cur = baseline_objective;
        let mut best_tiles = state.clone();
        let mut best_mapping = None;
        let mut best = cur;

        let t0 = (cur * 0.05).max(1e-9);
        let t_end = t0 * 1e-3;
        let alpha = (t_end / t0).powf(1.0 / iterations.max(1) as f64);
        let mut temp = t0;
        for _ in 0..iterations {
            if self.opts.cancel.is_cancelled() {
                return Err(PlacementSearchError::Cancelled);
            }
            // Propose: move one controller to a random unoccupied tile.
            let slot = rng.gen_range(0..k);
            let mut dst = TileId(rng.gen_range(0..n));
            while state.contains(&dst) {
                dst = TileId(rng.gen_range(0..n));
            }
            let mut cand = state.clone();
            cand[slot] = dst;
            cand.sort_unstable();
            let (mapping, objective) = self.score(&cand)?;
            let delta = objective - cur;
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                state = cand;
                cur = objective;
                if cur < best {
                    best = cur;
                    best_tiles = state.clone();
                    best_mapping = Some(mapping);
                }
            }
            temp *= alpha;
        }
        Ok((best_tiles, best_mapping, best))
    }
}

/// `C(n, k)`, or `None` on overflow (treated as "too many to enumerate").
fn binomial(n: usize, k: usize) -> Option<usize> {
    let k = k.min(n - k);
    let mut acc: usize = 1;
    for i in 0..k {
        acc = acc.checked_mul(n - i)? / (i + 1);
    }
    Some(acc)
}

/// Advance `combo` (strictly increasing indices) to the next `k`-subset
/// of `0..n` in lexicographic order. Returns `false` after the last one.
fn next_combination(combo: &mut [usize], n: usize) -> bool {
    let k = combo.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if combo[i] < n - k + i {
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// The mesh's symmetry group as tile-index permutations: the dihedral
/// group D4 (8 transforms) on square meshes, `{id, flip-rows, flip-cols,
/// rotate-180}` on rectangles. Candidate placements equivalent under any
/// of these induce the same multiset of `(TC, TM)` tile profiles, so the
/// solved objective is identical and only the canonical representative
/// needs an inner solve.
fn symmetry_transforms(mesh: &Mesh) -> Vec<Vec<usize>> {
    let (rows, cols) = (mesh.rows(), mesh.cols());
    let n = mesh.num_tiles();
    let mut out = Vec::new();
    for &transpose in if rows == cols {
        &[false, true][..]
    } else {
        &[false][..]
    } {
        for flip_r in [false, true] {
            for flip_c in [false, true] {
                let perm: Vec<usize> = (0..n)
                    .map(|idx| {
                        let (mut r, mut c) = (idx / cols, idx % cols);
                        if transpose {
                            std::mem::swap(&mut r, &mut c);
                        }
                        if flip_r {
                            r = rows - 1 - r;
                        }
                        if flip_c {
                            c = cols - 1 - c;
                        }
                        r * cols + c
                    })
                    .collect();
                out.push(perm);
            }
        }
    }
    out
}

/// Whether the sorted index set `combo` is the lexicographically smallest
/// member of its symmetry orbit.
fn is_canonical(combo: &[usize], transforms: &[Vec<usize>]) -> bool {
    let mut image = vec![0usize; combo.len()];
    for perm in transforms {
        for (dst, &src) in image.iter_mut().zip(combo) {
            *dst = perm[src];
        }
        image.sort_unstable();
        if image.as_slice() < combo {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig5_workload(mesh: &Mesh) -> ObmInstance {
        let mcs = MemoryControllers::corners(mesh);
        let tiles = TileLatencies::compute(mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.05; 16])
    }

    #[test]
    fn next_combination_enumerates_all() {
        let mut combo = vec![0, 1];
        let mut count = 1;
        while next_combination(&mut combo, 4) {
            count += 1;
        }
        assert_eq!(count, 6); // C(4,2)
        assert_eq!(combo, vec![2, 3]);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(16, 4), Some(1820));
        assert_eq!(binomial(64, 1), Some(64));
        assert_eq!(binomial(5, 0), Some(1));
    }

    #[test]
    fn square_mesh_has_eight_transforms() {
        let m = Mesh::square(4);
        let t = symmetry_transforms(&m);
        assert_eq!(t.len(), 8);
        // All transforms are permutations and the identity is present.
        assert!(t.iter().any(|p| p.iter().enumerate().all(|(i, &x)| i == x)));
        for p in &t {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn rectangular_mesh_has_four_transforms() {
        let m = Mesh::new(2, 4);
        assert_eq!(symmetry_transforms(&m).len(), 4);
    }

    #[test]
    fn canonical_reduction_counts_orbits_on_4x4() {
        // Single-controller placements on a 4×4 mesh fall into 3 D4
        // orbits: corner, edge, inner.
        let m = Mesh::square(4);
        let t = symmetry_transforms(&m);
        let canon: Vec<usize> = (0..16).filter(|&i| is_canonical(&[i], &t)).collect();
        assert_eq!(canon, vec![0, 1, 5]);
    }

    #[test]
    fn search_validates_inputs() {
        let mesh = Mesh::square(4);
        let inst = fig5_workload(&mesh);
        let err =
            |k: usize| co_optimize(&inst, &mesh, &PlacementOptions::new(k), sss_inner).unwrap_err();
        assert_eq!(err(0), PlacementSearchError::NoControllers);
        assert_eq!(
            err(17),
            PlacementSearchError::TooManyControllers {
                requested: 17,
                num_tiles: 16
            }
        );
        let small = Mesh::square(2);
        assert_eq!(
            co_optimize(&inst, &small, &PlacementOptions::new(1), sss_inner).unwrap_err(),
            PlacementSearchError::MeshMismatch {
                mesh_tiles: 4,
                instance_tiles: 16
            }
        );
    }

    #[test]
    fn cancelled_token_aborts_search() {
        let mesh = Mesh::square(4);
        let inst = fig5_workload(&mesh);
        let mut opts = PlacementOptions::new(1);
        opts.cancel = CancelToken::new();
        opts.cancel.cancel();
        assert_eq!(
            co_optimize(&inst, &mesh, &opts, sss_inner).unwrap_err(),
            PlacementSearchError::Cancelled
        );
    }

    #[test]
    fn exhaustive_single_mc_beats_corner_baseline() {
        // One controller on a 4×4 mesh: the corner default maximizes
        // average memory distance; the search must find a strictly
        // better (more central) tile, deterministically.
        let mesh = Mesh::square(4);
        let inst = fig5_workload(&mesh);
        let opts = PlacementOptions::new(1);
        let out = co_optimize(&inst, &mesh, &opts, sss_inner).expect("search runs");
        assert!(out.exhaustive);
        // 3 orbit representatives: corner (= the baseline, memoized),
        // edge, inner.
        assert_eq!(out.evaluated, 3);
        assert_eq!(out.baseline_layout.controllers().tiles(), &[TileId(0)]);
        assert!(
            out.objective < out.baseline_objective,
            "search {} !< baseline {}",
            out.objective,
            out.baseline_objective
        );
        assert!(out.gain_pct() > 0.0);
        // Reproducible: same options, same outcome.
        let again = co_optimize(&inst, &mesh, &opts, sss_inner).expect("search runs");
        assert_eq!(again.layout.controllers(), out.layout.controllers());
        assert_eq!(again.objective, out.objective);
        assert_eq!(again.mapping, out.mapping);
    }

    #[test]
    fn annealed_mode_never_loses_to_baseline() {
        let mesh = Mesh::square(4);
        let inst = fig5_workload(&mesh);
        let mut opts = PlacementOptions::new(2);
        opts.mode = SearchMode::Annealed { iterations: 40 };
        let out = co_optimize(&inst, &mesh, &opts, sss_inner).expect("search runs");
        assert!(!out.exhaustive);
        assert!(out.objective <= out.baseline_objective);
        assert!(out.evaluated <= 41 + 1); // memoization caps inner solves
        let again = co_optimize(&inst, &mesh, &opts, sss_inner).expect("search runs");
        assert_eq!(again.layout.controllers(), out.layout.controllers());
        assert_eq!(again.objective, out.objective);
    }

    #[test]
    fn baseline_placement_is_deterministic_and_extends() {
        let m = Mesh::square(4);
        assert_eq!(baseline_placement(&m, 1), vec![TileId(0)]);
        assert_eq!(
            baseline_placement(&m, 4),
            vec![TileId(0), TileId(3), TileId(12), TileId(15)]
        );
        let six = baseline_placement(&m, 6);
        assert_eq!(six.len(), 6);
        assert!(six.windows(2).all(|w| w[0] < w[1]));
    }
}
