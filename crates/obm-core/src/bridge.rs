//! Bridge from the mapping layer to the cycle-level simulator: the traffic
//! a mapped instance induces, as a [`TrafficSpec`] ready for
//! [`Network::new`](noc_sim::Network::new).
//!
//! Thread `j` of application `i` injects from tile `π(j)` at its mean
//! cache/memory rates; simulator traffic groups are the applications, so
//! the resulting [`SimReport`](noc_sim::SimReport) exposes per-application
//! measured latencies that line up with the analytic
//! [`AplReport`](crate::AplReport).

use crate::problem::{Mapping, ObmInstance};
use noc_sim::{Schedule, SourceSpec, TrafficSpec};

/// Build the [`TrafficSpec`] induced by `mapping`: one source per thread,
/// placed on its mapped tile, grouped by application, injecting at the
/// instance's mean per-kilocycle rates.
///
/// # Panics
/// Panics if the mapping is not valid for the instance (a valid mapping is
/// injective, so it can never produce duplicate-tile traffic).
pub fn traffic_spec(inst: &ObmInstance, mapping: &Mapping) -> TrafficSpec {
    debug_assert!(mapping.is_valid_for(inst), "invalid mapping");
    let sources: Vec<SourceSpec> = (0..inst.num_threads())
        .map(|j| SourceSpec {
            tile: mapping.tile_of(j),
            group: inst.app_of_thread(j),
            cache: Schedule::per_kilocycle(inst.cache_rate(j)),
            mem: Schedule::per_kilocycle(inst.mem_rate(j)),
        })
        .collect();
    TrafficSpec::new(sources, inst.num_apps()).expect("valid mapping induces valid traffic")
}

/// Build a drifting-workload [`TrafficSpec`]: each thread's rates walk
/// through one epoch per instance in `epochs`, switching every
/// `epoch_cycles` cycles ([`Schedule::trace_per_kilocycle`]). All epochs
/// must share `mapping`'s thread count and application structure — this is
/// the same workload whose *statistics* drift, not a different workload —
/// and the sources sit on `mapping`'s tiles for the whole run (an online
/// controller retargets them mid-run via
/// [`SwapController`](noc_sim::SwapController), not via the spec).
///
/// The epoch clock starts at cycle 0, i.e. warmup burns part of the first
/// epoch; size `epoch_cycles` against warmup + measurement, not
/// measurement alone. After the last epoch the trace wraps back to the
/// first ([`Schedule::rate_at`] is periodic), so make the epochs cover
/// the whole measured span.
///
/// # Panics
/// Panics if `epochs` is empty, the epochs disagree on thread count, or
/// the mapping is invalid for the first epoch (debug builds).
pub fn piecewise_traffic_spec(
    epochs: &[&ObmInstance],
    mapping: &Mapping,
    epoch_cycles: u64,
) -> TrafficSpec {
    assert!(!epochs.is_empty(), "need at least one epoch");
    let first = epochs[0];
    debug_assert!(mapping.is_valid_for(first), "invalid mapping");
    assert!(
        epochs
            .iter()
            .all(|e| e.num_threads() == first.num_threads()),
        "epochs must agree on thread count"
    );
    let sources: Vec<SourceSpec> = (0..first.num_threads())
        .map(|j| {
            let cache: Vec<f64> = epochs.iter().map(|e| e.cache_rate(j)).collect();
            let mem: Vec<f64> = epochs.iter().map(|e| e.mem_rate(j)).collect();
            SourceSpec {
                tile: mapping.tile_of(j),
                group: first.app_of_thread(j),
                cache: Schedule::trace_per_kilocycle(epoch_cycles, &cache),
                mem: Schedule::trace_per_kilocycle(epoch_cycles, &mem),
            }
        })
        .collect();
    TrafficSpec::new(sources, first.num_apps()).expect("valid mapping induces valid traffic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Mapper, SortSelectSwap};
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn fig5_instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.05; 16])
    }

    #[test]
    fn traffic_spec_covers_every_thread_once() {
        let inst = fig5_instance();
        let mapping = SortSelectSwap::default().map(&inst, 0);
        let spec = traffic_spec(&inst, &mapping);
        assert_eq!(spec.sources().len(), inst.num_threads());
        assert_eq!(spec.num_groups(), inst.num_apps());
        let mut tiles: Vec<usize> = spec.sources().iter().map(|s| s.tile.index()).collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), inst.num_threads(), "duplicate tiles");
        for s in spec.sources() {
            assert!(s.group < inst.num_apps());
        }
    }

    #[test]
    fn piecewise_spec_walks_the_epochs() {
        let inst = fig5_instance();
        // Epoch 2 doubles every rate.
        let doubled = ObmInstance::new(
            inst.tiles().clone(),
            inst.boundaries().to_vec(),
            (0..inst.num_threads())
                .map(|j| inst.cache_rate(j) * 2.0)
                .collect(),
            (0..inst.num_threads())
                .map(|j| inst.mem_rate(j) * 2.0)
                .collect(),
        );
        let mapping = SortSelectSwap::default().map(&inst, 0);
        let spec = piecewise_traffic_spec(&[&inst, &doubled], &mapping, 5_000);
        assert_eq!(spec.sources().len(), inst.num_threads());
        for (j, s) in spec.sources().iter().enumerate() {
            assert_eq!(s.tile, mapping.tile_of(j), "sources sit on the mapping");
            let early = s.cache.rate_at(0);
            let late = s.cache.rate_at(5_000);
            assert!(
                (late - 2.0 * early).abs() < 1e-12,
                "epoch 2 doubles thread {j}"
            );
            assert!(
                (s.cache.rate_at(10_000) - early).abs() < 1e-12,
                "trace wraps around"
            );
        }
    }

    #[test]
    fn traffic_spec_feeds_the_simulator() {
        let inst = fig5_instance();
        let mapping = SortSelectSwap::default().map(&inst, 0);
        let mesh = Mesh::square(4);
        let cfg = noc_sim::SimConfig::builder(mesh)
            .warmup_cycles(200)
            .measure_cycles(1_000)
            .seed(9)
            .build()
            .expect("valid config");
        let report = noc_sim::Network::new(cfg, traffic_spec(&inst, &mapping))
            .expect("valid scenario")
            .run();
        assert!(report.delivered > 0);
        assert_eq!(report.groups.len(), inst.num_apps());
    }
}
