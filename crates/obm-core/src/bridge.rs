//! Bridge from the mapping layer to the cycle-level simulator: the traffic
//! a mapped instance induces, as a [`TrafficSpec`] ready for
//! [`Network::new`](noc_sim::Network::new).
//!
//! Thread `j` of application `i` injects from tile `π(j)` at its mean
//! cache/memory rates; simulator traffic groups are the applications, so
//! the resulting [`SimReport`](noc_sim::SimReport) exposes per-application
//! measured latencies that line up with the analytic
//! [`AplReport`](crate::AplReport).

use crate::problem::{Mapping, ObmInstance};
use noc_sim::{Schedule, SourceSpec, TrafficSpec};

/// Build the [`TrafficSpec`] induced by `mapping`: one source per thread,
/// placed on its mapped tile, grouped by application, injecting at the
/// instance's mean per-kilocycle rates.
///
/// # Panics
/// Panics if the mapping is not valid for the instance (a valid mapping is
/// injective, so it can never produce duplicate-tile traffic).
pub fn traffic_spec(inst: &ObmInstance, mapping: &Mapping) -> TrafficSpec {
    debug_assert!(mapping.is_valid_for(inst), "invalid mapping");
    let sources: Vec<SourceSpec> = (0..inst.num_threads())
        .map(|j| SourceSpec {
            tile: mapping.tile_of(j),
            group: inst.app_of_thread(j),
            cache: Schedule::per_kilocycle(inst.cache_rate(j)),
            mem: Schedule::per_kilocycle(inst.mem_rate(j)),
        })
        .collect();
    TrafficSpec::new(sources, inst.num_apps()).expect("valid mapping induces valid traffic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Mapper, SortSelectSwap};
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn fig5_instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.05; 16])
    }

    #[test]
    fn traffic_spec_covers_every_thread_once() {
        let inst = fig5_instance();
        let mapping = SortSelectSwap::default().map(&inst, 0);
        let spec = traffic_spec(&inst, &mapping);
        assert_eq!(spec.sources().len(), inst.num_threads());
        assert_eq!(spec.num_groups(), inst.num_apps());
        let mut tiles: Vec<usize> = spec.sources().iter().map(|s| s.tile.index()).collect();
        tiles.sort_unstable();
        tiles.dedup();
        assert_eq!(tiles.len(), inst.num_threads(), "duplicate tiles");
        for s in spec.sources() {
            assert!(s.group < inst.num_apps());
        }
    }

    #[test]
    fn traffic_spec_feeds_the_simulator() {
        let inst = fig5_instance();
        let mapping = SortSelectSwap::default().map(&inst, 0);
        let mesh = Mesh::square(4);
        let cfg = noc_sim::SimConfig::builder(mesh)
            .warmup_cycles(200)
            .measure_cycles(1_000)
            .seed(9)
            .build()
            .expect("valid config");
        let report = noc_sim::Network::new(cfg, traffic_spec(&inst, &mapping))
            .expect("valid scenario")
            .run();
        assert!(report.delivered > 0);
        assert_eq!(report.groups.len(), inst.num_apps());
    }
}
