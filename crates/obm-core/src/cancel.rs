//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] carries a shared cancellation flag and an optional
//! wall-clock deadline. Solvers receive it through
//! [`Mapper::map_cancellable`](crate::algorithms::Mapper::map_cancellable)
//! and poll [`CancelToken::is_cancelled`] at coarse intervals inside their
//! inner loops (every ~1k iterations — often enough to stop within
//! microseconds, rare enough that the polling cost and the `Instant::now`
//! syscall stay invisible in profiles).
//!
//! The polling contract mirrors the telemetry probe contract: a token that
//! never fires must not perturb the search. Polling reads an atomic and
//! (when a deadline is set) the monotonic clock; it never touches solver
//! RNG streams, so for a fixed seed a completed cancellable run is
//! bit-identical to the plain [`Mapper::map`](crate::algorithms::Mapper)
//! result — pinned by the portfolio determinism suite.
//!
//! Tokens are cheap to clone; clones share the flag (an
//! `Arc<AtomicBool>`), so cancelling any clone cancels them all.
//! [`CancelToken::with_deadline_in`] derives a child that additionally
//! observes a deadline while still honouring the parent's flag — the
//! portfolio engine uses this to combine caller-driven cancellation with
//! its own wall-clock budget.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation flag plus an optional wall-clock deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that can never fire (alias of [`CancelToken::new`], for
    /// call sites that want to say so explicitly).
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// Derive a token sharing this token's flag that additionally expires
    /// at `deadline`. If this token already has an earlier deadline, the
    /// earlier one wins.
    pub fn with_deadline(&self, deadline: Instant) -> Self {
        let deadline = match self.deadline {
            Some(existing) if existing < deadline => existing,
            _ => deadline,
        };
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(deadline),
        }
    }

    /// Derive a token sharing this token's flag that expires `budget` from
    /// now.
    pub fn with_deadline_in(&self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Raise the cancellation flag (visible to every clone).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether the flag was raised explicitly via [`CancelToken::cancel`]
    /// (does not consult the deadline).
    pub fn cancelled_by_flag(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Whether this token's deadline (if any) has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the solve should stop: the flag was raised or the deadline
    /// passed. Reads one atomic, plus the monotonic clock only when a
    /// deadline is set.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled_by_flag() || self.deadline_passed()
    }

    /// The deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_never_fires() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!t.cancelled_by_flag());
        assert!(!t.deadline_passed());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_propagates_to_clones_and_children() {
        let t = CancelToken::never();
        let clone = t.clone();
        let child = t.with_deadline_in(Duration::from_secs(3600));
        t.cancel();
        assert!(clone.is_cancelled());
        assert!(child.is_cancelled());
        assert!(child.cancelled_by_flag());
        assert!(!child.deadline_passed());
    }

    #[test]
    fn expired_deadline_fires_without_flag() {
        let t = CancelToken::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.deadline_passed());
        assert!(!t.cancelled_by_flag());
    }

    #[test]
    fn child_keeps_earlier_parent_deadline() {
        let soon = Instant::now() + Duration::from_millis(1);
        let later = Instant::now() + Duration::from_secs(3600);
        let parent = CancelToken::new().with_deadline(soon);
        let child = parent.with_deadline(later);
        assert_eq!(child.deadline(), Some(soon));
        // And the reverse direction tightens too.
        let loose = CancelToken::new().with_deadline(later);
        let tight = loose.with_deadline(soon);
        assert_eq!(tight.deadline(), Some(soon));
    }
}
