//! Latency-balance metrics (paper §III.A).
//!
//! The paper examines three candidate objectives — standard deviation of
//! the per-application APLs, the min-to-max APL ratio, and the maximum APL
//! — and shows by the Figure 5 example that only max-APL simultaneously
//! rewards balance *and* low absolute latency. All three are provided here;
//! the algorithms optimize [`BalanceMetric::MaxApl`], the others are
//! reported for evaluation (Table 4 uses dev-APL).

use crate::eval::AplReport;
use serde::{Deserialize, Serialize};

/// A scalar balance metric over per-application APLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BalanceMetric {
    /// `max_i d_i` — the OBM objective (lower is better).
    MaxApl,
    /// Population standard deviation of the `d_i` (lower is better).
    DevApl,
    /// `min_i d_i / max_i d_i` (higher is better; 1 = perfectly equal).
    MinToMaxRatio,
}

impl BalanceMetric {
    /// Evaluate the metric on a report.
    pub fn value(self, report: &AplReport) -> f64 {
        match self {
            BalanceMetric::MaxApl => report.max_apl,
            BalanceMetric::DevApl => report.dev_apl,
            BalanceMetric::MinToMaxRatio => {
                if report.max_apl == 0.0 {
                    1.0
                } else {
                    report.min_apl / report.max_apl
                }
            }
        }
    }

    /// Whether a lower value of the metric is better.
    pub fn lower_is_better(self) -> bool {
        !matches!(self, BalanceMetric::MinToMaxRatio)
    }

    /// `true` if `a` is strictly better than `b` under this metric.
    pub fn better(self, a: f64, b: f64) -> bool {
        if self.lower_is_better() {
            a < b
        } else {
            a > b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(per_app: &[f64]) -> AplReport {
        let max = per_app.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = per_app.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = per_app.iter().sum::<f64>() / per_app.len() as f64;
        let dev =
            (per_app.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / per_app.len() as f64).sqrt();
        AplReport {
            per_app: per_app.to_vec(),
            max_apl: max,
            min_apl: min,
            argmax: 0,
            dev_apl: dev,
            g_apl: mean,
        }
    }

    #[test]
    fn fig5_style_tie_under_dev_but_not_max() {
        // Two perfectly balanced outcomes: APLs all 10.3375 vs all 11.5375.
        // dev-APL and min-to-max cannot tell them apart; max-APL can.
        let good = report(&[10.3375; 4]);
        let bad = report(&[11.5375; 4]);
        assert_eq!(
            BalanceMetric::DevApl.value(&good),
            BalanceMetric::DevApl.value(&bad)
        );
        assert_eq!(
            BalanceMetric::MinToMaxRatio.value(&good),
            BalanceMetric::MinToMaxRatio.value(&bad)
        );
        assert!(BalanceMetric::MaxApl.better(
            BalanceMetric::MaxApl.value(&good),
            BalanceMetric::MaxApl.value(&bad)
        ));
    }

    #[test]
    fn directionality() {
        assert!(BalanceMetric::MaxApl.lower_is_better());
        assert!(BalanceMetric::DevApl.lower_is_better());
        assert!(!BalanceMetric::MinToMaxRatio.lower_is_better());
        assert!(BalanceMetric::MinToMaxRatio.better(0.9, 0.5));
    }

    #[test]
    fn ratio_of_degenerate_zero_max() {
        let r = report(&[0.0, 0.0]);
        assert_eq!(BalanceMetric::MinToMaxRatio.value(&r), 1.0);
    }
}
