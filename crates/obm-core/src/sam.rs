//! Single-Application Mapping (SAM) — the paper's Algorithm 1.
//!
//! Given one application's threads and an equal-sized set of candidate
//! tiles, find the thread-to-tile assignment minimizing the application's
//! APL. Because a thread's latency contribution depends only on its own
//! tile (uniform cache hashing + proximity memory forwarding), this is a
//! linear assignment problem over the Eq. (13) cost matrix
//! `cost_jk = c_j·TC(k) + m_j·TM(k)`, solved exactly by the Hungarian
//! method in `O(N_a³)`.

use crate::problem::ObmInstance;
use assignment::CostMatrix;
use noc_model::TileId;

/// Result of a SAM solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SamSolution {
    /// `assignment[t]` is the tile given to the `t`-th thread of the
    /// input slice.
    pub assignment: Vec<TileId>,
    /// Minimized APL of the application over these tiles (total latency
    /// numerator ÷ application volume).
    pub apl: f64,
}

/// Solve SAM for the threads `threads` (global thread indices, all from
/// the same application in the intended use, though any thread set works)
/// over candidate `tiles`. More tiles than threads is allowed — the
/// Hungarian solve then also chooses *which* tiles to use.
///
/// # Panics
/// Panics if `threads.len() > tiles.len()`, if either is empty, or if the
/// total request volume of the threads is zero.
pub fn solve_sam(inst: &ObmInstance, threads: &[usize], tiles: &[TileId]) -> SamSolution {
    assert!(
        threads.len() <= tiles.len(),
        "SAM needs at least as many tiles as threads"
    );
    assert!(!threads.is_empty(), "empty SAM instance");
    let volume: f64 = threads
        .iter()
        .map(|&j| inst.cache_rate(j) + inst.mem_rate(j))
        .sum();
    assert!(volume > 0.0, "zero-volume thread set");
    // Step 1: Eq. (13) cost matrix, read from the instance's precomputed
    // flat tables (bit-identical to `placement_cost`).
    let tables = inst.eval_tables();
    let costs = CostMatrix::from_fn(threads.len(), tiles.len(), |r, cidx| {
        tables.cost(threads[r], tiles[cidx].index())
    });
    // Step 2: Hungarian.
    let sol = costs.solve();
    let assignment: Vec<TileId> = sol.row_to_col.iter().map(|&cidx| tiles[cidx]).collect();
    SamSolution {
        assignment,
        apl: sol.cost / volume,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ObmInstance;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn instance_4x4() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16])
    }

    #[test]
    fn sam_puts_hot_threads_on_cheap_tiles() {
        let inst = instance_4x4();
        // App 0's threads over one corner, two edges, one center tile.
        let mesh = Mesh::square(4);
        let corner = mesh.tile(noc_model::Coord::new(0, 0));
        let e1 = mesh.tile(noc_model::Coord::new(0, 1));
        let e2 = mesh.tile(noc_model::Coord::new(1, 0));
        let center = mesh.tile(noc_model::Coord::new(1, 1));
        let sol = solve_sam(&inst, &[0, 1, 2, 3], &[corner, e1, e2, center]);
        // Optimal: rate .1 → corner, .4 → center (paper Fig 5a structure).
        assert_eq!(sol.assignment[0], corner);
        assert_eq!(sol.assignment[3], center);
        assert!((sol.apl - 10.3375).abs() < 1e-9);
    }

    #[test]
    fn sam_is_no_worse_than_any_fixed_order() {
        let inst = instance_4x4();
        let tiles: Vec<TileId> = (0..4).map(TileId).collect();
        let threads = [4usize, 5, 6, 7];
        let sol = solve_sam(&inst, &threads, &tiles);
        // compare with the identity order
        let vol: f64 = threads
            .iter()
            .map(|&j| inst.cache_rate(j) + inst.mem_rate(j))
            .sum();
        let ident: f64 = threads
            .iter()
            .zip(&tiles)
            .map(|(&j, &t)| inst.placement_cost(j, t))
            .sum::<f64>()
            / vol;
        assert!(sol.apl <= ident + 1e-12);
    }

    #[test]
    fn sam_with_memory_traffic_prefers_corner_for_memory_heavy_thread() {
        // Two threads: one cache-only, one memory-only. Tiles: a corner
        // (cheap memory, expensive cache) and a center (vice versa). The
        // memory-heavy thread must take the corner.
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(
            tl,
            vec![0, 2],
            vec![1.0, 0.0], // thread 0: cache-only
            vec![0.0, 1.0], // thread 1: memory-only
        );
        let corner = mesh.tile(noc_model::Coord::new(0, 0));
        let center = mesh.tile(noc_model::Coord::new(1, 1));
        let sol = solve_sam(&inst, &[0, 1], &[corner, center]);
        assert_eq!(sol.assignment[0], center, "cache thread → center");
        assert_eq!(sol.assignment[1], corner, "memory thread → corner (0 hops)");
    }

    #[test]
    #[should_panic]
    fn too_few_tiles_panic() {
        let inst = instance_4x4();
        let _ = solve_sam(&inst, &[0, 1], &[TileId(0)]);
    }

    #[test]
    fn surplus_tiles_are_choosable() {
        // 2 threads over 4 candidate tiles: SAM must pick the 2 cheapest
        // placements overall.
        let inst = instance_4x4();
        let tiles: Vec<TileId> = vec![TileId(0), TileId(5), TileId(6), TileId(3)];
        let sol = solve_sam(&inst, &[2, 3], &tiles);
        assert_eq!(sol.assignment.len(), 2);
        // chosen tiles must be distinct members of the candidate set
        assert_ne!(sol.assignment[0], sol.assignment[1]);
        for t in &sol.assignment {
            assert!(tiles.contains(t));
        }
        // and no worse than restricting to exactly two tiles
        let restricted = solve_sam(&inst, &[2, 3], &tiles[..2]);
        assert!(sol.apl <= restricted.apl + 1e-12);
    }

    #[test]
    fn single_thread_single_tile() {
        let inst = instance_4x4();
        let sol = solve_sam(&inst, &[3], &[TileId(9)]);
        assert_eq!(sol.assignment, vec![TileId(9)]);
        let expect = inst.placement_cost(3, TileId(9)) / (inst.cache_rate(3) + inst.mem_rate(3));
        assert!((sol.apl - expect).abs() < 1e-12);
    }
}
