//! Dynamic multi-application scenarios (paper §IV.B, final paragraph):
//! because sort-select-swap runs in `O(N³)` — milliseconds at CMP scale —
//! the mapping can be recomputed whenever applications arrive or depart,
//! using request-rate statistics collected at runtime.
//!
//! [`DynamicSystem`] maintains the live application set and rebuilds the
//! [`ObmInstance`] + mapping on demand; the `app_consolidation` example
//! drives a full arrival/departure timeline through it.

use crate::algorithms::Mapper;
use crate::eval::{evaluate, AplReport};
use crate::objective::{migration_distance, threads_moved};
use crate::problem::{Mapping, ObmInstance};
use noc_model::{Mesh, TileLatencies};
use std::sync::OnceLock;

/// The measured rates of one application's threads, as a runtime
/// statistics collector would report them.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Display name.
    pub name: String,
    /// Per-thread cache request rates.
    pub cache_rates: Vec<f64>,
    /// Per-thread memory request rates (same length).
    pub mem_rates: Vec<f64>,
}

impl AppSpec {
    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.cache_rates.len()
    }
}

/// Error returned when an arriving application does not fit on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Threads requested by the arriving application.
    pub requested: usize,
    /// Tiles still free.
    pub available: usize,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "application needs {} tiles but only {} are free",
            self.requested, self.available
        )
    }
}

impl std::error::Error for CapacityError {}

/// The result of one [`DynamicSystem`] remap — the instance the mapper
/// saw, the mapping it produced, its analytic evaluation, and (when the
/// remap was computed against a previous mapping via
/// [`DynamicSystem::remap_from`]) the movement it implies. Mirrors the
/// portfolio crate's `SolveOutcome` shape.
#[derive(Debug, Clone)]
pub struct RemapOutcome {
    /// The instance the mapping was computed for. Carries warm
    /// [`ObmInstance::eval_tables`] when the system's cache was reused.
    pub instance: ObmInstance,
    /// The mapping the mapper produced.
    pub mapping: Mapping,
    /// Its analytic evaluation.
    pub report: AplReport,
    /// Threads placed on a different tile than in the previous mapping
    /// (0 when there was no previous mapping to compare against).
    pub threads_moved: usize,
    /// Total Manhattan hops those threads travelled (0 without a
    /// previous mapping).
    pub migration_cost: u64,
}

/// A CMP hosting a changing set of applications.
#[derive(Debug, Clone)]
pub struct DynamicSystem {
    tiles: TileLatencies,
    apps: Vec<AppSpec>,
    /// Memoized [`ObmInstance`] for the current application set,
    /// invalidated on arrival/departure. Cloning the cached instance
    /// preserves its lazily built `EvalTables` (the `OnceLock` inside
    /// `ObmInstance` clones its populated value), so repeated remaps of
    /// an unchanged system skip both the instance rebuild and the SoA
    /// table build.
    cache: OnceLock<ObmInstance>,
}

impl DynamicSystem {
    /// An empty chip with the given tile latency arrays.
    pub fn new(tiles: TileLatencies) -> Self {
        DynamicSystem {
            tiles,
            apps: Vec::new(),
            cache: OnceLock::new(),
        }
    }

    /// Tiles on the chip.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Threads currently running.
    pub fn threads_in_use(&self) -> usize {
        self.apps.iter().map(AppSpec::num_threads).sum()
    }

    /// Currently hosted applications.
    pub fn apps(&self) -> &[AppSpec] {
        &self.apps
    }

    /// Admit an application; returns its index.
    ///
    /// # Errors
    /// [`CapacityError`] if the chip lacks free tiles.
    ///
    /// # Panics
    /// Panics if the spec's rate vectors disagree in length or the app has
    /// no threads.
    pub fn add_app(&mut self, spec: AppSpec) -> Result<usize, CapacityError> {
        assert_eq!(spec.cache_rates.len(), spec.mem_rates.len());
        assert!(spec.num_threads() > 0, "empty application");
        let free = self.num_tiles() - self.threads_in_use();
        if spec.num_threads() > free {
            return Err(CapacityError {
                requested: spec.num_threads(),
                available: free,
            });
        }
        self.apps.push(spec);
        self.cache.take();
        Ok(self.apps.len() - 1)
    }

    /// Remove an application by index (indices above shift down).
    ///
    /// # Panics
    /// Panics if the index is out of range.
    pub fn remove_app(&mut self, idx: usize) -> AppSpec {
        let removed = self.apps.remove(idx);
        self.cache.take();
        removed
    }

    /// The memoized OBM instance for the current application set, built
    /// on first use and reused until the set changes.
    ///
    /// # Panics
    /// Panics if no applications are hosted.
    fn cached_instance(&self) -> &ObmInstance {
        self.cache.get_or_init(|| {
            assert!(!self.apps.is_empty(), "no applications to map");
            let mut boundaries = vec![0];
            let mut c = Vec::new();
            let mut m = Vec::new();
            for app in &self.apps {
                c.extend_from_slice(&app.cache_rates);
                m.extend_from_slice(&app.mem_rates);
                boundaries.push(c.len());
            }
            ObmInstance::new(self.tiles.clone(), boundaries, c, m)
        })
    }

    /// The OBM instance for the current application set.
    ///
    /// Served from the internal memo: repeated calls between arrivals/
    /// departures return clones of one instance, and the clone carries
    /// any [`ObmInstance::eval_tables`] already built — remapping an
    /// unchanged system no longer rebuilds the SoA cost tables.
    ///
    /// # Panics
    /// Panics if no applications are hosted.
    pub fn instance(&self) -> ObmInstance {
        self.cached_instance().clone()
    }

    /// Recompute the mapping for the current set with `mapper`.
    ///
    /// There is no previous mapping to diff against, so the outcome's
    /// movement fields are 0; use [`remap_from`](Self::remap_from) when
    /// an incumbent mapping exists.
    pub fn remap(&self, mapper: &dyn Mapper, seed: u64) -> RemapOutcome {
        // Map against the cached reference so any `EvalTables` the
        // mapper builds stay in the memo for the next remap; the clone
        // handed out then carries the warm tables too.
        let inst = self.cached_instance();
        let mapping = mapper.map(inst, seed);
        let report = evaluate(inst, &mapping);
        RemapOutcome {
            instance: inst.clone(),
            mapping,
            report,
            threads_moved: 0,
            migration_cost: 0,
        }
    }

    /// Recompute the mapping and account for the migration it implies
    /// relative to `previous` (the mapping the system currently runs):
    /// `threads_moved` counts threads whose tile changed and
    /// `migration_cost` sums their Manhattan hop distances on `mesh`.
    /// Threads are compared by index over the common prefix, so after a
    /// departure reshuffles indices the counts are relative to the
    /// surviving prefix.
    pub fn remap_from(
        &self,
        mapper: &dyn Mapper,
        seed: u64,
        previous: &Mapping,
        mesh: &Mesh,
    ) -> RemapOutcome {
        let mut outcome = self.remap(mapper, seed);
        outcome.threads_moved = threads_moved(previous, &outcome.mapping);
        outcome.migration_cost = migration_distance(mesh, previous, &outcome.mapping);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::SortSelectSwap;
    use noc_model::{LatencyParams, MemoryControllers, Mesh};

    fn system() -> DynamicSystem {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        DynamicSystem::new(TileLatencies::compute(
            &mesh,
            &mcs,
            LatencyParams::fig5_example(),
        ))
    }

    fn spec(name: &str, n: usize, rate: f64) -> AppSpec {
        AppSpec {
            name: name.into(),
            cache_rates: vec![rate; n],
            mem_rates: vec![rate * 0.15; n],
        }
    }

    #[test]
    fn admit_until_full_then_reject() {
        let mut sys = system();
        assert!(sys.add_app(spec("a", 8, 1.0)).is_ok());
        assert!(sys.add_app(spec("b", 8, 2.0)).is_ok());
        let err = sys.add_app(spec("c", 1, 1.0)).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.requested, 1);
    }

    #[test]
    fn departure_frees_capacity() {
        let mut sys = system();
        sys.add_app(spec("a", 8, 1.0)).unwrap();
        sys.add_app(spec("b", 8, 2.0)).unwrap();
        let removed = sys.remove_app(0);
        assert_eq!(removed.name, "a");
        assert!(sys.add_app(spec("c", 8, 3.0)).is_ok());
        assert_eq!(sys.apps().len(), 2);
    }

    #[test]
    fn remap_produces_valid_balanced_mapping() {
        let mut sys = system();
        sys.add_app(spec("light", 8, 0.5)).unwrap();
        sys.add_app(spec("heavy", 8, 5.0)).unwrap();
        let out = sys.remap(&SortSelectSwap::default(), 0);
        assert!(out.mapping.is_valid_for(&out.instance));
        assert_eq!(out.report.per_app.len(), 2);
        assert_eq!(out.threads_moved, 0);
        assert_eq!(out.migration_cost, 0);
        // uniform per-thread rates within each app ⇒ near-equal APLs
        assert!(out.report.dev_apl < 0.5, "dev-APL {}", out.report.dev_apl);
    }

    #[test]
    fn partial_occupancy_supported() {
        let mut sys = system();
        sys.add_app(spec("small", 5, 1.0)).unwrap();
        let out = sys.remap(&SortSelectSwap::default(), 0);
        assert_eq!(out.instance.num_threads(), 5);
        assert!(out.mapping.is_valid_for(&out.instance));
    }

    #[test]
    fn instance_cache_reused_and_invalidated() {
        let mut sys = system();
        sys.add_app(spec("a", 8, 1.0)).unwrap();
        // A handed-out clone starts cold; warming the memoized instance
        // (as remap's solver does) makes every later clone warm.
        assert!(!sys.instance().eval_tables_built());
        let _ = sys.cached_instance().eval_tables();
        assert!(sys.instance().eval_tables_built(), "cache must be reused");
        // Arrival invalidates: fresh instance, cold tables.
        sys.add_app(spec("b", 4, 2.0)).unwrap();
        let rebuilt = sys.instance();
        assert!(!rebuilt.eval_tables_built());
        assert_eq!(rebuilt.num_threads(), 12);
        // Departure invalidates too.
        let _ = rebuilt.eval_tables();
        sys.remove_app(1);
        assert!(!sys.instance().eval_tables_built());
        assert_eq!(sys.instance().num_threads(), 8);
    }

    #[test]
    fn remap_from_accounts_for_migration() {
        let mut sys = system();
        sys.add_app(spec("light", 8, 0.5)).unwrap();
        sys.add_app(spec("heavy", 8, 5.0)).unwrap();
        let mesh = Mesh::square(4);
        let first = sys.remap(&SortSelectSwap::default(), 0);
        // Same system, same mapper, same seed ⇒ no movement.
        let same = sys.remap_from(&SortSelectSwap::default(), 0, &first.mapping, &mesh);
        assert_eq!(same.threads_moved, 0);
        assert_eq!(same.migration_cost, 0);
        // Against the identity incumbent the optimized mapping moves
        // threads, and every move costs at least one hop.
        let ident = Mapping::identity(16);
        let moved = sys.remap_from(&SortSelectSwap::default(), 0, &ident, &mesh);
        assert!(moved.threads_moved > 0);
        assert!(moved.migration_cost >= moved.threads_moved as u64);
    }
}
