//! Dynamic multi-application scenarios (paper §IV.B, final paragraph):
//! because sort-select-swap runs in `O(N³)` — milliseconds at CMP scale —
//! the mapping can be recomputed whenever applications arrive or depart,
//! using request-rate statistics collected at runtime.
//!
//! [`DynamicSystem`] maintains the live application set and rebuilds the
//! [`ObmInstance`] + mapping on demand; the `app_consolidation` example
//! drives a full arrival/departure timeline through it.

use crate::algorithms::Mapper;
use crate::eval::{evaluate, AplReport};
use crate::problem::{Mapping, ObmInstance};
use noc_model::TileLatencies;

/// The measured rates of one application's threads, as a runtime
/// statistics collector would report them.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Display name.
    pub name: String,
    /// Per-thread cache request rates.
    pub cache_rates: Vec<f64>,
    /// Per-thread memory request rates (same length).
    pub mem_rates: Vec<f64>,
}

impl AppSpec {
    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.cache_rates.len()
    }
}

/// Error returned when an arriving application does not fit on the chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// Threads requested by the arriving application.
    pub requested: usize,
    /// Tiles still free.
    pub available: usize,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "application needs {} tiles but only {} are free",
            self.requested, self.available
        )
    }
}

impl std::error::Error for CapacityError {}

/// A CMP hosting a changing set of applications.
#[derive(Debug, Clone)]
pub struct DynamicSystem {
    tiles: TileLatencies,
    apps: Vec<AppSpec>,
}

impl DynamicSystem {
    /// An empty chip with the given tile latency arrays.
    pub fn new(tiles: TileLatencies) -> Self {
        DynamicSystem {
            tiles,
            apps: Vec::new(),
        }
    }

    /// Tiles on the chip.
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Threads currently running.
    pub fn threads_in_use(&self) -> usize {
        self.apps.iter().map(AppSpec::num_threads).sum()
    }

    /// Currently hosted applications.
    pub fn apps(&self) -> &[AppSpec] {
        &self.apps
    }

    /// Admit an application; returns its index.
    ///
    /// # Errors
    /// [`CapacityError`] if the chip lacks free tiles.
    ///
    /// # Panics
    /// Panics if the spec's rate vectors disagree in length or the app has
    /// no threads.
    pub fn add_app(&mut self, spec: AppSpec) -> Result<usize, CapacityError> {
        assert_eq!(spec.cache_rates.len(), spec.mem_rates.len());
        assert!(spec.num_threads() > 0, "empty application");
        let free = self.num_tiles() - self.threads_in_use();
        if spec.num_threads() > free {
            return Err(CapacityError {
                requested: spec.num_threads(),
                available: free,
            });
        }
        self.apps.push(spec);
        Ok(self.apps.len() - 1)
    }

    /// Remove an application by index (indices above shift down).
    ///
    /// # Panics
    /// Panics if the index is out of range.
    pub fn remove_app(&mut self, idx: usize) -> AppSpec {
        self.apps.remove(idx)
    }

    /// Build the OBM instance for the current application set.
    ///
    /// # Panics
    /// Panics if no applications are hosted.
    pub fn instance(&self) -> ObmInstance {
        assert!(!self.apps.is_empty(), "no applications to map");
        let mut boundaries = vec![0];
        let mut c = Vec::new();
        let mut m = Vec::new();
        for app in &self.apps {
            c.extend_from_slice(&app.cache_rates);
            m.extend_from_slice(&app.mem_rates);
            boundaries.push(c.len());
        }
        ObmInstance::new(self.tiles.clone(), boundaries, c, m)
    }

    /// Recompute the mapping for the current set with `mapper`, returning
    /// the instance, the mapping and its evaluation.
    pub fn remap(&self, mapper: &dyn Mapper, seed: u64) -> (ObmInstance, Mapping, AplReport) {
        let inst = self.instance();
        let mapping = mapper.map(&inst, seed);
        let report = evaluate(&inst, &mapping);
        (inst, mapping, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::SortSelectSwap;
    use noc_model::{LatencyParams, MemoryControllers, Mesh};

    fn system() -> DynamicSystem {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        DynamicSystem::new(TileLatencies::compute(
            &mesh,
            &mcs,
            LatencyParams::fig5_example(),
        ))
    }

    fn spec(name: &str, n: usize, rate: f64) -> AppSpec {
        AppSpec {
            name: name.into(),
            cache_rates: vec![rate; n],
            mem_rates: vec![rate * 0.15; n],
        }
    }

    #[test]
    fn admit_until_full_then_reject() {
        let mut sys = system();
        assert!(sys.add_app(spec("a", 8, 1.0)).is_ok());
        assert!(sys.add_app(spec("b", 8, 2.0)).is_ok());
        let err = sys.add_app(spec("c", 1, 1.0)).unwrap_err();
        assert_eq!(err.available, 0);
        assert_eq!(err.requested, 1);
    }

    #[test]
    fn departure_frees_capacity() {
        let mut sys = system();
        sys.add_app(spec("a", 8, 1.0)).unwrap();
        sys.add_app(spec("b", 8, 2.0)).unwrap();
        let removed = sys.remove_app(0);
        assert_eq!(removed.name, "a");
        assert!(sys.add_app(spec("c", 8, 3.0)).is_ok());
        assert_eq!(sys.apps().len(), 2);
    }

    #[test]
    fn remap_produces_valid_balanced_mapping() {
        let mut sys = system();
        sys.add_app(spec("light", 8, 0.5)).unwrap();
        sys.add_app(spec("heavy", 8, 5.0)).unwrap();
        let (inst, mapping, report) = sys.remap(&SortSelectSwap::default(), 0);
        assert!(mapping.is_valid_for(&inst));
        assert_eq!(report.per_app.len(), 2);
        // uniform per-thread rates within each app ⇒ near-equal APLs
        assert!(report.dev_apl < 0.5, "dev-APL {}", report.dev_apl);
    }

    #[test]
    fn partial_occupancy_supported() {
        let mut sys = system();
        sys.add_app(spec("small", 5, 1.0)).unwrap();
        let (inst, mapping, _) = sys.remap(&SortSelectSwap::default(), 0);
        assert_eq!(inst.num_threads(), 5);
        assert!(mapping.is_valid_for(&inst));
    }
}
