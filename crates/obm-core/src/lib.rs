//! On-chip-latency Balanced Mapping (OBM) — the primary contribution of
//! *"Balancing On-Chip Network Latency in Multi-Application Mapping for
//! Chip-Multiprocessors"* (Zhu et al., IPDPS 2014).
//!
//! * [`problem`] — the OBM instance (Section III.B) and thread-to-tile
//!   mappings;
//! * [`eval`] — per-application APL (Eq. 5), max-APL/dev-APL/g-APL metrics,
//!   and an incremental evaluator for local-search algorithms;
//! * [`batch`] — the flat SoA evaluation tables (precomputed Eq. 13 cost
//!   matrix) every solver hot path reads, and the batched
//!   [`BatchEvaluator`] with its deterministic parallel `eval_many`;
//! * [`metrics`] — the balance-metric comparison of Section III.A;
//! * [`sam`] — the Hungarian-based single-application solve (Algorithm 1);
//! * [`algorithms`] — the proposed [`algorithms::SortSelectSwap`]
//!   (Algorithm 2) plus the paper's comparison algorithms
//!   ([`algorithms::Global`], [`algorithms::MonteCarlo`],
//!   [`algorithms::SimulatedAnnealing`]) and exact brute force;
//! * [`reduction`] — the NP-completeness proof of Section III.C as
//!   executable code (set-partition ⇌ DOBM);
//! * [`dynamic`] — runtime add/remove-application remapping (Section IV.B);
//! * [`refine`] — pairwise-swap local search usable to polish any mapping
//!   (extension);
//! * [`oversub`] — multiple threads per tile via virtual-tile expansion
//!   (the generalization the paper's §III.B footnote defers);
//! * [`bridge`] — [`traffic_spec`]: the `noc-sim` traffic a mapped
//!   instance induces, for cycle-level validation of analytic results;
//! * [`objective`] — the pluggable [`Objective`] API (min-max APL,
//!   max-min balance, energy, migration-penalized) behind `--objective`
//!   and the online controller;
//! * [`remap`] — the closed-loop online [`RemapController`]: windowed
//!   telemetry in, drift detection, warm-started migration-penalized
//!   re-solve, deterministic mid-run mapping swap out (DESIGN.md §14);
//! * [`placement`] — placement co-optimization: an outer deterministic
//!   search over memory-controller [`ChipLayout`](noc_model::ChipLayout)s
//!   with the OBM solver in the inner loop (DESIGN.md §15).
//!
//! Every [`Mapper`] also has a [`Mapper::map_probed`] entry point that
//! streams solver telemetry (`noc-telemetry`
//! [`SolverEvent`](noc_telemetry::SolverEvent)s — accepted SSS window
//! swaps, SA temperature checkpoints, incremental-evaluation deltas) to a
//! caller-supplied probe without perturbing the search, and a
//! [`Mapper::map_cancellable`] entry point ([`cancel`]) that additionally
//! polls a [`CancelToken`] so deadlines and external cancellation stop
//! long searches early — the foundation of the `obm-portfolio` parallel
//! solver-portfolio engine.
//!
//! # Quick example
//!
//! ```
//! use noc_model::{LatencyParams, Mesh, MemoryControllers, TileLatencies};
//! use obm_core::algorithms::{Mapper, SortSelectSwap};
//! use obm_core::{evaluate, ObmInstance};
//!
//! // The paper's Figure 5 setting: 4×4 mesh, 4 apps × 4 threads.
//! let mesh = Mesh::square(4);
//! let mcs = MemoryControllers::corners(&mesh);
//! let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
//! let cache_rates: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
//! let inst = ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], cache_rates, vec![0.0; 16]);
//!
//! let mapping = SortSelectSwap::default().map(&inst, 0);
//! let report = evaluate(&inst, &mapping);
//! assert!((report.max_apl - 10.3375).abs() < 1e-9); // the paper's optimum
//! ```

pub mod algorithms;
pub mod batch;
pub mod bridge;
pub mod cancel;
pub mod dynamic;
pub mod eval;
pub mod metrics;
pub mod objective;
pub mod oversub;
pub mod placement;
pub mod problem;
pub mod reduction;
pub mod refine;
pub mod remap;
pub mod sam;

pub use algorithms::{BudgetError, Mapper};
pub use batch::{BatchEvaluator, EvalTables};
pub use bridge::{piecewise_traffic_spec, traffic_spec};
pub use cancel::CancelToken;
pub use dynamic::RemapOutcome;
pub use eval::{evaluate, AplReport, IncrementalEvaluator};
pub use metrics::BalanceMetric;
pub use objective::{
    migration_distance, refine_for_objective, threads_moved, Energy, MaxMinBalance,
    MigrationPenalized, MinMaxApl, Objective, ObjectiveSpec,
};
pub use placement::{
    co_optimize, sss_inner, PlacementOptions, PlacementOutcome, PlacementSearchError, SearchMode,
};
pub use problem::{Mapping, ObmInstance};
pub use refine::{polish, Polished};
pub use remap::{RemapConfig, RemapController, RemapError, RemapEvent};
pub use sam::{solve_sam, SamSolution};
