//! The OBM problem instance and mapping representation (paper §III.B).

use noc_model::{TileId, TileLatencies};
use serde::{Deserialize, Serialize};

/// An instance of the On-chip-latency Balanced Mapping problem.
///
/// * `N` tiles with latency arrays `TC(k)`, `TM(k)` ([`TileLatencies`]);
/// * `A` applications; application `i` owns the contiguous thread range
///   `boundaries[i] .. boundaries[i+1]` (the paper's `N_{i-1}+1 .. N_i`);
/// * per-thread L2-cache request rates `c` and memory-controller request
///   rates `m`.
///
/// The number of threads may be smaller than the number of tiles; the
/// paper's footnote handles that by adding zero-traffic pseudo-threads,
/// which is equivalent to simply leaving the surplus tiles unassigned —
/// that is how this implementation treats them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObmInstance {
    tiles: TileLatencies,
    boundaries: Vec<usize>,
    c: Vec<f64>,
    m: Vec<f64>,
    /// Per-application request-volume denominators `Σ (c_j + m_j)`.
    app_volume: Vec<f64>,
    /// Per-application `1/app_volume`, precomputed so the incremental
    /// evaluator's most-called queries (`app_apl`, `max_apl`) multiply
    /// instead of divide.
    inv_app_volume: Vec<f64>,
    /// Sum of `app_volume` — the g-APL denominator. Cached at construction
    /// because `evaluate()` divides by it on the solver hot path (one call
    /// per candidate mapping), where re-summing `app_volume` every time
    /// costs an O(A) pass per evaluation.
    total_volume: f64,
    /// Per-application priority weights (all 1 in the paper's formulation).
    /// The min-max objective becomes `max_i w_i·d_i`, so an application
    /// with weight 2 is driven to half the latency of a weight-1 peer —
    /// the "differentiated services" integration the paper's §II.A points
    /// to as future work.
    weights: Vec<f64>,
    /// Lazily built flat evaluation tables (the SoA cost matrix every
    /// solver hot path reads). Cache state, not identity: skipped by
    /// serde and excluded from `PartialEq`.
    #[serde(skip, default)]
    tables: std::sync::OnceLock<crate::batch::EvalTables>,
}

impl PartialEq for ObmInstance {
    fn eq(&self, other: &Self) -> bool {
        // The `tables` cache is derived state — two instances are equal
        // iff their defining fields are, whether or not either has built
        // its tables yet.
        self.tiles == other.tiles
            && self.boundaries == other.boundaries
            && self.c == other.c
            && self.m == other.m
            && self.app_volume == other.app_volume
            && self.inv_app_volume == other.inv_app_volume
            && self.total_volume == other.total_volume
            && self.weights == other.weights
    }
}

impl ObmInstance {
    /// Build an instance.
    ///
    /// `boundaries` is `[N_0 = 0, N_1, …, N_A = num_threads]`, strictly
    /// increasing.
    ///
    /// # Panics
    /// Panics if the boundary vector is malformed, rates are negative or
    /// non-finite, rate vectors disagree in length, there are more threads
    /// than tiles, or an application has zero total request volume (its APL
    /// would be undefined).
    pub fn new(tiles: TileLatencies, boundaries: Vec<usize>, c: Vec<f64>, m: Vec<f64>) -> Self {
        assert_eq!(c.len(), m.len(), "rate vector length mismatch");
        assert!(
            boundaries.len() >= 2 && boundaries[0] == 0,
            "boundaries must start with 0 and contain at least one app"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        assert_eq!(
            *boundaries.last().unwrap(),
            c.len(),
            "last boundary must equal the thread count"
        );
        assert!(
            c.len() <= tiles.len(),
            "more threads ({}) than tiles ({})",
            c.len(),
            tiles.len()
        );
        for (j, (&cj, &mj)) in c.iter().zip(&m).enumerate() {
            assert!(
                cj.is_finite() && mj.is_finite() && cj >= 0.0 && mj >= 0.0,
                "invalid rates for thread {j}: c={cj}, m={mj}"
            );
        }
        let app_volume: Vec<f64> = boundaries
            .windows(2)
            .map(|w| (w[0]..w[1]).map(|j| c[j] + m[j]).sum())
            .collect();
        assert!(
            app_volume.iter().all(|&v| v > 0.0),
            "every application needs positive total request volume"
        );
        let weights = vec![1.0; app_volume.len()];
        let total_volume = app_volume.iter().sum();
        let inv_app_volume = app_volume.iter().map(|&v| 1.0 / v).collect();
        ObmInstance {
            tiles,
            boundaries,
            c,
            m,
            app_volume,
            inv_app_volume,
            total_volume,
            weights,
            tables: std::sync::OnceLock::new(),
        }
    }

    /// Attach per-application priority weights, switching the objective to
    /// `max_i w_i·d_i` (weighted OBM). Weight 1 everywhere recovers the
    /// paper's formulation.
    ///
    /// # Panics
    /// Panics if the weight count differs from the application count or a
    /// weight is non-positive/non-finite.
    pub fn with_app_weights(mut self, weights: Vec<f64>) -> Self {
        assert_eq!(weights.len(), self.num_apps(), "one weight per application");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w > 0.0),
            "weights must be positive and finite"
        );
        self.weights = weights;
        // Weights are baked into the eval tables; drop any cached build.
        self.tables = std::sync::OnceLock::new();
        self
    }

    /// Priority weight of application `i`.
    #[inline]
    pub fn app_weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Whether this instance uses non-unit weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.iter().any(|&w| w != 1.0)
    }

    /// Number of tiles `N`.
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Number of threads (≤ tiles).
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.c.len()
    }

    /// Number of applications `A`.
    #[inline]
    pub fn num_apps(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The tile latency arrays.
    #[inline]
    pub fn tiles(&self) -> &TileLatencies {
        &self.tiles
    }

    /// Thread range of application `i`.
    #[inline]
    pub fn app_threads(&self, i: usize) -> std::ops::Range<usize> {
        self.boundaries[i]..self.boundaries[i + 1]
    }

    /// Application owning thread `j`.
    #[inline]
    pub fn app_of_thread(&self, j: usize) -> usize {
        // boundaries is short (A+1 entries); partition_point is O(log A).
        self.boundaries.partition_point(|&b| b <= j) - 1
    }

    /// Cache request rate `c_j`.
    #[inline]
    pub fn cache_rate(&self, j: usize) -> f64 {
        self.c[j]
    }

    /// Memory request rate `m_j`.
    #[inline]
    pub fn mem_rate(&self, j: usize) -> f64 {
        self.m[j]
    }

    /// Total request volume of application `i` (the APL denominator).
    #[inline]
    pub fn app_volume(&self, i: usize) -> f64 {
        self.app_volume[i]
    }

    /// Reciprocal request volume `1/app_volume(i)`, precomputed at
    /// construction.
    #[inline]
    pub fn inv_app_volume(&self, i: usize) -> f64 {
        self.inv_app_volume[i]
    }

    /// Total request volume over all applications (cached at
    /// construction).
    #[inline]
    pub fn total_volume(&self) -> f64 {
        self.total_volume
    }

    /// The flat evaluation tables for this instance, built on first use
    /// and cached for the instance's lifetime (an instance deserialized
    /// by serde starts with an empty cache and rebuilds lazily).
    pub fn eval_tables(&self) -> &crate::batch::EvalTables {
        self.tables
            .get_or_init(|| crate::batch::EvalTables::build(self))
    }

    /// Whether [`eval_tables`](Self::eval_tables) has already been built
    /// for this instance. Observability for cache-reuse tests and for
    /// callers deciding whether a clone carries warm tables.
    pub fn eval_tables_built(&self) -> bool {
        self.tables.get().is_some()
    }

    /// Latency numerator contribution of thread `j` when placed on tile
    /// `k`: `c_j·TC(k) + m_j·TM(k)` — the paper's Eq. (13) cost.
    #[inline]
    pub fn placement_cost(&self, j: usize, k: TileId) -> f64 {
        self.c[j] * self.tiles.tc(k) + self.m[j] * self.tiles.tm(k)
    }

    /// The boundary vector `[0, N_1, …, N_A]`.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }
}

/// A thread-to-tile mapping `π(j) = k` — an injective assignment of every
/// thread to a tile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    thread_to_tile: Vec<TileId>,
}

impl Mapping {
    /// Build from an explicit assignment vector.
    ///
    /// # Panics
    /// Panics if two threads share a tile.
    pub fn new(thread_to_tile: Vec<TileId>) -> Self {
        let mut seen = vec![
            false;
            thread_to_tile
                .iter()
                .map(|t| t.index())
                .max()
                .map_or(0, |m| m + 1)
        ];
        for &t in &thread_to_tile {
            assert!(!seen[t.index()], "tile {} assigned twice", t.index());
            seen[t.index()] = true;
        }
        Mapping { thread_to_tile }
    }

    /// The identity mapping: thread `j` on tile `j`.
    pub fn identity(num_threads: usize) -> Self {
        Mapping {
            thread_to_tile: (0..num_threads).map(TileId).collect(),
        }
    }

    /// Tile of thread `j`.
    #[inline]
    pub fn tile_of(&self, j: usize) -> TileId {
        self.thread_to_tile[j]
    }

    /// Number of threads.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.thread_to_tile.len()
    }

    /// The raw assignment vector.
    pub fn as_slice(&self) -> &[TileId] {
        &self.thread_to_tile
    }

    /// Inverse view: `tile → thread` over `num_tiles` tiles (`None` for
    /// unassigned tiles).
    pub fn tile_to_thread(&self, num_tiles: usize) -> Vec<Option<usize>> {
        let mut inv = vec![None; num_tiles];
        for (j, &t) in self.thread_to_tile.iter().enumerate() {
            inv[t.index()] = Some(j);
        }
        inv
    }

    /// Reassign thread `j` to `tile` without validity checking (used by
    /// search algorithms that maintain injectivity themselves).
    #[inline]
    pub(crate) fn set_tile(&mut self, j: usize, tile: TileId) {
        self.thread_to_tile[j] = tile;
    }

    /// Swap the tiles of threads `a` and `b`.
    #[inline]
    pub fn swap_threads(&mut self, a: usize, b: usize) {
        self.thread_to_tile.swap(a, b);
    }

    /// Check injectivity and range against an instance.
    pub fn is_valid_for(&self, inst: &ObmInstance) -> bool {
        if self.thread_to_tile.len() != inst.num_threads() {
            return false;
        }
        let mut seen = vec![false; inst.num_tiles()];
        for &t in &self.thread_to_tile {
            if t.index() >= inst.num_tiles() || seen[t.index()] {
                return false;
            }
            seen[t.index()] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh};

    fn tiny_instance() -> ObmInstance {
        let mesh = Mesh::square(2);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        ObmInstance::new(
            tiles,
            vec![0, 2, 4],
            vec![1.0, 2.0, 3.0, 4.0],
            vec![0.1, 0.2, 0.3, 0.4],
        )
    }

    #[test]
    fn instance_accessors() {
        let inst = tiny_instance();
        assert_eq!(inst.num_tiles(), 4);
        assert_eq!(inst.num_threads(), 4);
        assert_eq!(inst.num_apps(), 2);
        assert_eq!(inst.app_threads(0), 0..2);
        assert_eq!(inst.app_threads(1), 2..4);
        assert_eq!(inst.app_of_thread(0), 0);
        assert_eq!(inst.app_of_thread(1), 0);
        assert_eq!(inst.app_of_thread(2), 1);
        assert_eq!(inst.app_of_thread(3), 1);
        assert!((inst.app_volume(0) - 3.3).abs() < 1e-12);
        assert!((inst.total_volume() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn placement_cost_is_eq13() {
        let inst = tiny_instance();
        let k = TileId(0);
        let expect = 1.0 * inst.tiles().tc(k) + 0.1 * inst.tiles().tm(k);
        assert!((inst.placement_cost(0, k) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn duplicate_tile_panics() {
        let _ = Mapping::new(vec![TileId(0), TileId(0)]);
    }

    #[test]
    #[should_panic]
    fn zero_volume_app_panics() {
        let mesh = Mesh::square(2);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let _ = ObmInstance::new(tiles, vec![0, 2], vec![0.0, 0.0], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn too_many_threads_panics() {
        let mesh = Mesh::square(2);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let _ = ObmInstance::new(tiles, vec![0, 5], vec![1.0; 5], vec![0.0; 5]);
    }

    #[test]
    fn mapping_inverse_view() {
        let m = Mapping::new(vec![TileId(2), TileId(0)]);
        let inv = m.tile_to_thread(4);
        assert_eq!(inv, vec![Some(1), None, Some(0), None]);
    }

    #[test]
    fn identity_mapping_valid() {
        let inst = tiny_instance();
        let m = Mapping::identity(4);
        assert!(m.is_valid_for(&inst));
        let mut bad = m.clone();
        bad.set_tile(0, TileId(1));
        assert!(!bad.is_valid_for(&inst)); // duplicate tile 1
    }

    #[test]
    fn swap_threads() {
        let mut m = Mapping::identity(3);
        m.swap_threads(0, 2);
        assert_eq!(m.tile_of(0), TileId(2));
        assert_eq!(m.tile_of(2), TileId(0));
    }
}
