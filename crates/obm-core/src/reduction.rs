//! Executable version of the paper's NP-completeness proof (§III.C):
//! a polynomial reduction from **set-partition** to the decision version of
//! OBM (*DOBM*).
//!
//! Given a set `S = {s_k}`, the reduction builds an `N`-tile "chip" with
//! `TC(k) = s_k`, `TM(k) = 0`, two equal-size unit-rate applications, and
//! threshold `γ = mean(S)`. A mapping with both APLs `≤ γ` exists **iff**
//! `S` splits into two equal-cardinality halves of equal sum. With an exact
//! DOBM oracle (brute force on small instances) this decides set-partition
//! — which is what the tests verify, making the proof executable.

use crate::algorithms::{BruteForce, Mapper};
use crate::problem::ObmInstance;
use noc_model::{LatencyParams, TileLatencies};

/// The DOBM instance and threshold produced by the reduction.
#[derive(Debug, Clone)]
pub struct ReducedInstance {
    /// The constructed OBM instance (two apps, unit cache rates).
    pub instance: ObmInstance,
    /// The decision threshold `γ = (1/N)·Σ TC(k)` (Eq. 9).
    pub gamma: f64,
}

/// Build the DOBM instance for a set-partition input.
///
/// # Panics
/// Panics if `s` has odd length, is empty, or contains negative/non-finite
/// values (set-partition is over non-negative numbers).
pub fn set_partition_to_dobm(s: &[f64]) -> ReducedInstance {
    assert!(
        !s.is_empty() && s.len().is_multiple_of(2),
        "need an even-size set"
    );
    assert!(
        s.iter().all(|&x| x.is_finite() && x >= 0.0),
        "set elements must be non-negative and finite"
    );
    let n = s.len();
    let tiles = TileLatencies::from_raw(s.to_vec(), vec![0.0; n], LatencyParams::fig5_example());
    let instance = ObmInstance::new(
        tiles,
        vec![0, n / 2, n],
        vec![1.0; n], // c_j = 1
        vec![0.0; n], // TM = 0 ⇒ memory rates irrelevant; keep 0
    );
    let gamma = s.iter().sum::<f64>() / n as f64;
    ReducedInstance { instance, gamma }
}

/// Decide DOBM exactly (brute force): does a mapping exist with every
/// application's APL ≤ `gamma` (up to `eps` slack for float arithmetic)?
///
/// Only valid for instances small enough for [`BruteForce`].
pub fn decide_dobm_exact(red: &ReducedInstance, eps: f64) -> bool {
    // The min-max optimum is ≤ γ iff a feasible mapping exists.
    let optimum = crate::eval::evaluate(&red.instance, &BruteForce.map(&red.instance, 0)).max_apl;
    optimum <= red.gamma + eps
}

/// Decide set-partition via the reduction (the proof's subroutine-Y call).
pub fn set_partition_via_dobm(s: &[f64]) -> bool {
    let red = set_partition_to_dobm(s);
    decide_dobm_exact(&red, 1e-9)
}

/// Reference implementation of equal-cardinality set-partition by direct
/// subset enumeration (for cross-checking the reduction in tests).
pub fn set_partition_direct(s: &[f64]) -> bool {
    assert!(s.len().is_multiple_of(2));
    let n = s.len();
    let half = n / 2;
    let total: f64 = s.iter().sum();
    // enumerate subsets of size n/2 containing element 0 (wlog)
    (0u32..(1 << n))
        .filter(|mask| mask.count_ones() as usize == half && (mask & 1) == 1)
        .any(|mask| {
            let sum: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| s[i]).sum();
            (2.0 * sum - total).abs() < 1e-9
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yes_instances() {
        // {1,2,3,4}: {1,4} vs {2,3}.
        assert!(set_partition_via_dobm(&[1.0, 2.0, 3.0, 4.0]));
        // {5,5,5,5}: trivially partitionable.
        assert!(set_partition_via_dobm(&[5.0, 5.0, 5.0, 5.0]));
        // {1,1,2,4,5,5}: {1,2,5} vs {1,4,5}? sums 8 and 10 — no; but
        // {1,4,5} vs {1,2,5}… let's use a known-yes: {1,2,3,4,5,7}:
        // {1,4,6}? Use {2,3,6} vs {1,5,5}: build that set.
        assert!(set_partition_via_dobm(&[2.0, 3.0, 6.0, 1.0, 5.0, 5.0]));
    }

    #[test]
    fn no_instances() {
        // {1,1,1,10}: total 13, odd halves impossible.
        assert!(!set_partition_via_dobm(&[1.0, 1.0, 1.0, 10.0]));
        // {1,2,4,8}: no equal split (sum 15).
        assert!(!set_partition_via_dobm(&[1.0, 2.0, 4.0, 8.0]));
        // equal-sum but unequal-cardinality-only splits: {3,3,3,9}:
        // sum 18, need two pairs summing 9 each: {3,3}=6, {3,9}=12 — no.
        assert!(!set_partition_via_dobm(&[3.0, 3.0, 3.0, 9.0]));
    }

    #[test]
    fn reduction_agrees_with_direct_solver_exhaustively() {
        // All small integer sets with values in 1..=6, size 4.
        for a in 1..=6u32 {
            for b in a..=6 {
                for c in b..=6 {
                    for d in c..=6 {
                        let s = [a as f64, b as f64, c as f64, d as f64];
                        assert_eq!(
                            set_partition_via_dobm(&s),
                            set_partition_direct(&s),
                            "disagreement on {s:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gamma_matches_eq9() {
        let red = set_partition_to_dobm(&[2.0, 4.0, 6.0, 8.0]);
        assert!((red.gamma - 5.0).abs() < 1e-12);
        assert_eq!(red.instance.num_apps(), 2);
        assert_eq!(red.instance.num_threads(), 4);
    }

    #[test]
    #[should_panic]
    fn odd_sets_rejected() {
        let _ = set_partition_to_dobm(&[1.0, 2.0, 3.0]);
    }
}
