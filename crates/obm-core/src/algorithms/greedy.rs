//! A cheap `O(N log N)` balance-aware baseline: **balanced greedy
//! dealing**. Sort tiles by cache latency and deal them to the
//! applications round-robin (each application receives an even spread of
//! cheap and expensive tiles — the "select" intuition of SSS without the
//! Hungarian solve), then within each application pair the heaviest
//! threads with the cheapest tiles by a simple sort.
//!
//! Not in the paper; included as an ablation point between Random and SSS:
//! it shows how much of SSS's win comes from the even spread alone and how
//! much the Hungarian + sliding-window machinery adds on top.

use crate::algorithms::Mapper;
use crate::problem::{Mapping, ObmInstance};
use noc_model::TileId;

/// Balanced greedy dealing.
#[derive(Debug, Clone, Copy, Default)]
pub struct BalancedGreedy;

impl Mapper for BalancedGreedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn map(&self, inst: &ObmInstance, _seed: u64) -> Mapping {
        // Tiles sorted by TC ascending.
        let mut tiles: Vec<TileId> = (0..inst.num_tiles()).map(TileId).collect();
        tiles.sort_by(|&a, &b| {
            inst.tiles()
                .tc(a)
                .partial_cmp(&inst.tiles().tc(b))
                .expect("finite TC")
                .then(a.index().cmp(&b.index()))
        });
        // Deal tiles to applications round-robin, proportionally to their
        // thread counts (apps with more threads draw more often).
        let a = inst.num_apps();
        let mut app_tiles: Vec<Vec<TileId>> = vec![Vec::new(); a];
        let mut needs: Vec<usize> = (0..a).map(|i| inst.app_threads(i).len()).collect();
        let mut t = 0;
        while needs.iter().any(|&n| n > 0) {
            for i in 0..a {
                if needs[i] > 0 {
                    app_tiles[i].push(tiles[t]);
                    t += 1;
                    needs[i] -= 1;
                }
            }
        }
        // Within each app: heaviest thread ↔ cheapest tile. A thread's
        // "weight" here is its cache rate (the dominant class); tiles are
        // already sorted cheap-first.
        let mut assignment = vec![TileId(0); inst.num_threads()];
        let tables = inst.eval_tables();
        for (i, tiles_of_app) in app_tiles.iter().enumerate() {
            let mut threads: Vec<usize> = tables.app_range(i).collect();
            threads.sort_by(|&x, &y| {
                tables
                    .cache_rate(y)
                    .partial_cmp(&tables.cache_rate(x))
                    .expect("finite rates")
                    .then(x.cmp(&y))
            });
            for (thread, &tile) in threads.iter().zip(tiles_of_app) {
                assignment[*thread] = tile;
            }
        }
        Mapping::new(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Global, RandomMapper, SortSelectSwap};
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn instance(seed: u64) -> ObmInstance {
        let mesh = Mesh::square(8);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut c = Vec::with_capacity(64);
        for app in 0..4 {
            let scale = [0.5, 1.5, 4.0, 9.0][app];
            for _ in 0..16 {
                c.push(scale * rng.gen_range(0.2..2.0));
            }
        }
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        ObmInstance::new(tiles, vec![0, 16, 32, 48, 64], c, m)
    }

    #[test]
    fn greedy_is_valid_and_deterministic() {
        let inst = instance(1);
        let a = BalancedGreedy.map(&inst, 0);
        assert!(a.is_valid_for(&inst));
        assert_eq!(a, BalancedGreedy.map(&inst, 99));
    }

    #[test]
    fn greedy_beats_random_and_global_on_balance() {
        let inst = instance(2);
        let greedy = evaluate(&inst, &BalancedGreedy.map(&inst, 0));
        let glob = evaluate(&inst, &Global.map(&inst, 0));
        let rand = evaluate(&inst, &RandomMapper.map(&inst, 7));
        assert!(greedy.max_apl < glob.max_apl);
        assert!(greedy.dev_apl < glob.dev_apl);
        assert!(greedy.max_apl < rand.max_apl);
    }

    #[test]
    fn sss_refines_greedy() {
        // SSS's Hungarian + window machinery must not lose to the cheap
        // dealing heuristic.
        for seed in [3u64, 4, 5] {
            let inst = instance(seed);
            let greedy = evaluate(&inst, &BalancedGreedy.map(&inst, 0));
            let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
            assert!(
                sss.max_apl <= greedy.max_apl + 1e-9,
                "seed {seed}: SSS {} vs Greedy {}",
                sss.max_apl,
                greedy.max_apl
            );
        }
    }

    #[test]
    fn unequal_app_sizes_supported() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(
            tl,
            vec![0, 3, 10, 14],
            (1..=14).map(|x| x as f64).collect(),
            vec![0.1; 14],
        );
        let m = BalancedGreedy.map(&inst, 0);
        assert!(m.is_valid_for(&inst));
    }
}
