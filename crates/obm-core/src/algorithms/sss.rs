//! The proposed **sort-select-swap** heuristic (paper §IV.B, Algorithm 2).
//!
//! 1. **Sort** all tiles by their L2-cache APL `TC(k)`.
//! 2. **Select** ("coarse tuning"): for each application, split the
//!    remaining sorted tile list into `ΔN_i` equal sections and take the
//!    middle tile of each — every application receives the same spread of
//!    cheap and expensive cache tiles — then run the Hungarian-based SAM
//!    (Algorithm 1) to place the application's threads on its tiles.
//! 3. **Swap** ("fine tuning"): slide a 4-tile window over the sorted tile
//!    list with step sizes `s = 1 .. N/4`; in each window try all 24
//!    permutations of the window occupants and greedily keep the one with
//!    the smallest max-APL. Finish with one more SAM pass per application.
//!
//! Overall complexity `O(N³)` (sort `O(N log N)`, selection + SAM `O(N³)`,
//! `O(N²)` windows × 24 permutations with `O(1)` incremental evaluation,
//! final SAM `O(N³)`).
//!
//! The window size, step-size schedule, selection rule and final SAM pass
//! are configurable so the ablation benches can quantify each design
//! choice; the defaults are exactly the paper's.

use crate::algorithms::Mapper;
use crate::cancel::CancelToken;
use crate::eval::IncrementalEvaluator;
use crate::problem::{Mapping, ObmInstance};
use crate::sam::solve_sam;
use noc_model::TileId;
use noc_telemetry::{NoopSink, Probe, SolverEvent};

/// Window positions between [`CancelToken`] polls inside a step-size pass
/// (power of two: mask test). Each position tries up to 24 permutations,
/// so 256 positions is a comfortable poll cadence.
const CANCEL_POLL_MASK: usize = 256 - 1;

/// Which tile each section contributes during the select step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionRule {
    /// The paper's rule: the middle tile of each section.
    Middle,
    /// The first (cheapest) tile of each section — biased; for ablation.
    First,
    /// The last (most expensive) tile of each section — biased; ablation.
    Last,
}

/// The sort-select-swap mapper.
#[derive(Debug, Clone, Copy)]
pub struct SortSelectSwap {
    /// Sliding-window size (paper: 4). 1 disables swapping; sizes up to 6
    /// are supported (w! permutations are enumerated).
    pub window: usize,
    /// Largest window step size; `None` = `N / window` (the paper's
    /// schedule `s = 1 .. N/4`).
    pub max_step: Option<usize>,
    /// Run the final per-application SAM pass (paper: yes).
    pub final_sam: bool,
    /// Section selection rule (paper: middle).
    pub selection: SelectionRule,
}

impl Default for SortSelectSwap {
    fn default() -> Self {
        SortSelectSwap {
            window: 4,
            max_step: None,
            final_sam: true,
            selection: SelectionRule::Middle,
        }
    }
}

impl Mapper for SortSelectSwap {
    fn name(&self) -> &'static str {
        "SSS"
    }

    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping {
        self.map_probed(inst, seed, &mut NoopSink)
    }

    fn map_probed(&self, inst: &ObmInstance, seed: u64, probe: &mut dyn Probe) -> Mapping {
        self.map_cancellable(inst, seed, &CancelToken::never(), probe)
            .expect("a never-firing token cannot cancel SSS")
    }

    fn map_cancellable(
        &self,
        inst: &ObmInstance,
        _seed: u64,
        token: &CancelToken,
        probe: &mut dyn Probe,
    ) -> Option<Mapping> {
        assert!(
            (1..=6).contains(&self.window),
            "window size {} out of supported range 1..=6",
            self.window
        );
        // ---- Step 1: sort tiles by TC.
        if token.is_cancelled() {
            return None;
        }
        let sorted = sorted_tiles(inst);

        // ---- Step 2: select + SAM per application (each SAM is O(N³), so
        // poll between applications).
        let mut assignment: Vec<Option<TileId>> = vec![None; inst.num_threads()];
        let mut remaining = sorted.clone();
        for i in 0..inst.num_apps() {
            if token.is_cancelled() {
                return None;
            }
            let threads: Vec<usize> = inst.app_threads(i).collect();
            let picked = select_sections(&remaining, threads.len(), self.selection);
            let tiles: Vec<TileId> = picked.iter().map(|&idx| remaining[idx]).collect();
            let sam = solve_sam(inst, &threads, &tiles);
            for (t, &tile) in threads.iter().zip(&sam.assignment) {
                assignment[*t] = Some(tile);
            }
            remove_indices(&mut remaining, &picked);
        }
        let mapping = Mapping::new(
            assignment
                .into_iter()
                .map(|t| t.expect("all threads assigned"))
                .collect(),
        );

        // ---- Step 3: greedy sliding-window swap.
        let mut ev = IncrementalEvaluator::new(inst, mapping);
        if self.window >= 2 {
            let enabled = probe.is_enabled();
            let n = sorted.len();
            let perms = permutations(self.window);
            let max_step = self.max_step.unwrap_or(n / self.window).max(1);
            let mut window_tiles = vec![TileId(0); self.window];
            for s in 1..=max_step {
                let span = (self.window - 1) * s;
                if span >= n {
                    break;
                }
                let pass_start_obj = ev.max_apl();
                for start in 0..(n - span) {
                    if start & CANCEL_POLL_MASK == 0 && token.is_cancelled() {
                        return None;
                    }
                    for (t, wt) in window_tiles.iter_mut().enumerate() {
                        *wt = sorted[start + t * s];
                    }
                    let accepted = best_window_permutation(&mut ev, &window_tiles, &perms);
                    if enabled {
                        if let Some((objective, delta)) = accepted {
                            probe.on_solver_event(&SolverEvent::SwapAccepted {
                                window_start: start,
                                step: s as u64,
                                objective,
                                delta,
                            });
                        }
                    }
                }
                if enabled {
                    ev.emit_delta(probe, ev.max_apl() - pass_start_obj);
                }
            }
        }

        // ---- Final SAM per application on its current tiles.
        if self.final_sam {
            let mut mapping = ev.into_mapping();
            for i in 0..inst.num_apps() {
                if token.is_cancelled() {
                    return None;
                }
                let threads: Vec<usize> = inst.app_threads(i).collect();
                let tiles: Vec<TileId> = threads.iter().map(|&j| mapping.tile_of(j)).collect();
                let sam = solve_sam(inst, &threads, &tiles);
                for (t, &tile) in threads.iter().zip(&sam.assignment) {
                    mapping.set_tile(*t, tile);
                }
            }
            debug_assert!(mapping.is_valid_for(inst));
            Some(mapping)
        } else {
            Some(ev.into_mapping())
        }
    }
}

/// Tiles sorted ascending by `TC(k)`, ties broken by index (deterministic).
fn sorted_tiles(inst: &ObmInstance) -> Vec<TileId> {
    let mut tiles: Vec<TileId> = (0..inst.num_tiles()).map(TileId).collect();
    tiles.sort_by(|&a, &b| {
        inst.tiles()
            .tc(a)
            .partial_cmp(&inst.tiles().tc(b))
            .expect("finite TC")
            .then(a.index().cmp(&b.index()))
    });
    tiles
}

/// Indices (into the remaining list) of the tile chosen from each of
/// `sections` equal-length sections.
fn select_sections(remaining: &[TileId], sections: usize, rule: SelectionRule) -> Vec<usize> {
    let len = remaining.len();
    assert!(sections >= 1 && sections <= len);
    (0..sections)
        .map(|s| {
            let start = s * len / sections;
            let end = (s + 1) * len / sections;
            debug_assert!(start < end);
            match rule {
                SelectionRule::Middle => (start + end - 1) / 2,
                SelectionRule::First => start,
                SelectionRule::Last => end - 1,
            }
        })
        .collect()
}

/// Remove the (ascending) `indices` from `v`.
fn remove_indices(v: &mut Vec<TileId>, indices: &[usize]) {
    debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
    for &idx in indices.iter().rev() {
        v.remove(idx);
    }
}

/// Try every permutation of the window occupants; keep the best (the
/// identity wins ties, so the search never churns). Returns
/// `Some((new objective, objective delta))` when a non-identity
/// permutation was kept, `None` otherwise.
fn best_window_permutation(
    ev: &mut IncrementalEvaluator<'_>,
    tiles: &[TileId],
    perms: &[Vec<usize>],
) -> Option<(f64, f64)> {
    let start_val = ev.max_apl();
    let mut best_val = start_val;
    let mut best_perm: Option<&[usize]> = None;
    for perm in perms.iter().skip(1) {
        // skip the identity (index 0)
        ev.apply_window_permutation(tiles, perm);
        let val = ev.max_apl();
        if val + 1e-12 < best_val {
            best_val = val;
            best_perm = Some(perm);
        }
        // revert
        ev.apply_window_permutation(tiles, &invert(perm));
    }
    let perm = best_perm?;
    ev.apply_window_permutation(tiles, perm);
    Some((best_val, best_val - start_val))
}

/// Inverse permutation `q` with `p[q[s]] = s`.
fn invert(p: &[usize]) -> Vec<usize> {
    let mut q = vec![0; p.len()];
    for (x, &px) in p.iter().enumerate() {
        q[px] = x;
    }
    q
}

/// All permutations of `0..w` with the identity first. The paper's window
/// size (4) uses the precomputed table.
fn permutations(w: usize) -> Vec<Vec<usize>> {
    if w == 4 {
        return crate::algorithms::PERMS4
            .iter()
            .map(|p| p.to_vec())
            .collect();
    }
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..w).collect();
    heap_permute(&mut items, w, &mut out);
    out.sort(); // lexicographic ⇒ identity first
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{Global, Mapper};
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn fig5_instance() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16])
    }

    fn random_8x8_instance(seed: u64) -> ObmInstance {
        let mesh = Mesh::square(8);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut c = Vec::with_capacity(64);
        for app in 0..4 {
            let scale = [0.5, 1.5, 4.0, 9.0][app];
            for _ in 0..16 {
                c.push(scale * rng.gen_range(0.2..2.0));
            }
        }
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        ObmInstance::new(tiles, vec![0, 16, 32, 48, 64], c, m)
    }

    #[test]
    fn sss_finds_fig5_optimum() {
        // The paper's 4×4 example has a known optimum: every app at
        // 10.3375 cycles. SSS should land exactly there.
        let inst = fig5_instance();
        let r = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
        assert!(
            (r.max_apl - 10.3375).abs() < 1e-9,
            "SSS max-APL {} != 10.3375",
            r.max_apl
        );
        assert!(r.dev_apl < 1e-9, "dev-APL {}", r.dev_apl);
    }

    #[test]
    fn sss_beats_global_on_max_apl() {
        for seed in 0..3 {
            let inst = random_8x8_instance(seed);
            let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
            let glob = evaluate(&inst, &Global.map(&inst, 0));
            assert!(
                sss.max_apl <= glob.max_apl + 1e-9,
                "seed {seed}: SSS {} vs Global {}",
                sss.max_apl,
                glob.max_apl
            );
            assert!(
                sss.dev_apl < glob.dev_apl,
                "seed {seed}: SSS dev {} vs Global dev {}",
                sss.dev_apl,
                glob.dev_apl
            );
        }
    }

    #[test]
    fn sss_g_apl_close_to_global() {
        // Figure 10: SSS pays less than ~6% g-APL over the Global optimum.
        let inst = random_8x8_instance(11);
        let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
        let glob = evaluate(&inst, &Global.map(&inst, 0));
        assert!(
            sss.g_apl <= glob.g_apl * 1.06,
            "SSS g-APL {} vs Global {}",
            sss.g_apl,
            glob.g_apl
        );
    }

    #[test]
    fn sss_is_deterministic() {
        let inst = random_8x8_instance(5);
        assert_eq!(
            SortSelectSwap::default().map(&inst, 0),
            SortSelectSwap::default().map(&inst, 42)
        );
    }

    #[test]
    fn swap_step_never_hurts() {
        // With swapping disabled the result must be no better than with it.
        let inst = random_8x8_instance(7);
        let no_swap = SortSelectSwap {
            window: 1,
            ..Default::default()
        };
        let with_swap = SortSelectSwap::default();
        let a = evaluate(&inst, &no_swap.map(&inst, 0)).max_apl;
        let b = evaluate(&inst, &with_swap.map(&inst, 0)).max_apl;
        assert!(b <= a + 1e-9, "swap made things worse: {b} > {a}");
    }

    #[test]
    fn selection_rules_all_yield_valid_mappings() {
        let inst = random_8x8_instance(9);
        for rule in [
            SelectionRule::Middle,
            SelectionRule::First,
            SelectionRule::Last,
        ] {
            let cfg = SortSelectSwap {
                selection: rule,
                ..Default::default()
            };
            assert!(cfg.map(&inst, 0).is_valid_for(&inst));
        }
    }

    #[test]
    fn spare_tiles_supported() {
        // 10 threads on 16 tiles: SSS must leave 6 tiles empty and still
        // produce a valid mapping.
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tl, vec![0, 5, 10], vec![1.0; 10], vec![0.1; 10]);
        let m = SortSelectSwap::default().map(&inst, 0);
        assert!(m.is_valid_for(&inst));
    }

    #[test]
    fn select_sections_middle_of_16_into_16() {
        let tiles: Vec<TileId> = (0..16).map(TileId).collect();
        let idx = select_sections(&tiles, 16, SelectionRule::Middle);
        assert_eq!(idx, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn select_sections_middle_of_16_into_4() {
        let tiles: Vec<TileId> = (0..16).map(TileId).collect();
        // Sections [0,4) [4,8) [8,12) [12,16); middles 1, 5, 9, 13
        // ((start+end-1)/2 with integer floor).
        let idx = select_sections(&tiles, 4, SelectionRule::Middle);
        assert_eq!(idx, vec![1, 5, 9, 13]);
    }

    #[test]
    fn permutations_counts() {
        assert_eq!(permutations(1).len(), 1);
        assert_eq!(permutations(2).len(), 2);
        assert_eq!(permutations(4).len(), 24);
        assert_eq!(permutations(5).len(), 120);
        assert_eq!(permutations(4)[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn permutations_match_const_table() {
        let dynamic = permutations(4);
        for (a, b) in dynamic.iter().zip(crate::algorithms::PERMS4.iter()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn invert_roundtrip() {
        let p = vec![2usize, 0, 3, 1];
        let q = invert(&p);
        for s in 0..4 {
            assert_eq!(p[q[s]], s);
        }
    }

    #[test]
    fn probed_map_matches_map_and_emits_events() {
        use noc_telemetry::{RingSink, SolverEvent};
        let inst = random_8x8_instance(3);
        let sss = SortSelectSwap::default();
        let plain = sss.map(&inst, 0);
        let mut sink = RingSink::new(1 << 16);
        let probed = sss.map_probed(&inst, 0, &mut sink);
        assert_eq!(plain, probed, "probe perturbed the search");
        assert_eq!(sink.dropped(), 0);
        let mut swaps = 0usize;
        let mut deltas = 0usize;
        for e in sink.solver_events() {
            match e {
                SolverEvent::SwapAccepted { delta, .. } => {
                    swaps += 1;
                    assert!(*delta < 0.0, "accepted swap must improve: {delta}");
                }
                SolverEvent::EvalDelta { edits, .. } => {
                    deltas += 1;
                    assert!(*edits > 0);
                }
                other => panic!("unexpected event from SSS: {other:?}"),
            }
        }
        assert!(swaps > 0, "expected accepted swaps on a random instance");
        assert!(deltas > 0, "expected one eval-delta per step-size pass");
    }

    #[test]
    fn cancelled_token_yields_none_quiet_token_matches_map() {
        let inst = random_8x8_instance(3);
        let sss = SortSelectSwap::default();
        let fired = CancelToken::new();
        fired.cancel();
        assert!(sss
            .map_cancellable(&inst, 0, &fired, &mut NoopSink)
            .is_none());
        assert_eq!(
            sss.map_cancellable(&inst, 0, &CancelToken::never(), &mut NoopSink),
            Some(sss.map(&inst, 0))
        );
    }

    #[test]
    fn window_sizes_2_through_5_work() {
        let inst = fig5_instance();
        for w in 2..=5 {
            let cfg = SortSelectSwap {
                window: w,
                ..Default::default()
            };
            let m = cfg.map(&inst, 0);
            assert!(m.is_valid_for(&inst), "window {w}");
        }
    }
}
