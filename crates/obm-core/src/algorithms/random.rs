//! Uniformly random mapping — the baseline population of the paper's
//! Table 1 ("Random" column is the average over >10⁴ random mappings).

use crate::algorithms::Mapper;
use crate::problem::{Mapping, ObmInstance};
use noc_model::TileId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Draws one uniformly random injective mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomMapper;

impl RandomMapper {
    /// Draw a random mapping using an existing RNG (used by Monte-Carlo
    /// and simulated annealing for their initial states).
    pub fn draw(inst: &ObmInstance, rng: &mut SmallRng) -> Mapping {
        let mut tiles: Vec<TileId> = (0..inst.num_tiles()).map(TileId).collect();
        tiles.shuffle(rng);
        tiles.truncate(inst.num_threads());
        Mapping::new(tiles)
    }

    /// Estimate the random-mapping averages (g-APL, max-APL, dev-APL) over
    /// `samples` draws — the "Random" row of Table 1. The canonical home of
    /// the former free function [`random_averages`].
    pub fn averages(inst: &ObmInstance, samples: usize, seed: u64) -> RandomAverages {
        assert!(samples > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Draw the whole population up front and score it through the
        // batch evaluator (same draws, same report bits as the old
        // one-evaluate-per-draw loop).
        let pool: Vec<Mapping> = (0..samples)
            .map(|_| RandomMapper::draw(inst, &mut rng))
            .collect();
        let be = crate::batch::BatchEvaluator::new(inst);
        let mut sum_g = 0.0;
        let mut sum_max = 0.0;
        let mut sum_dev = 0.0;
        // Stream the pool through one recycled report buffer in slabs.
        // 1024 is a multiple of the evaluator's internal chunk, so the
        // chunk boundaries — and therefore every report's bits — are the
        // same as one whole-pool eval_many call.
        let mut reports = Vec::new();
        for slab in pool.chunks(1024) {
            be.eval_many_into(slab, &mut reports);
            for r in &reports {
                sum_g += r.g_apl;
                sum_max += r.max_apl;
                sum_dev += r.dev_apl;
            }
        }
        let n = samples as f64;
        RandomAverages {
            samples,
            mean_g_apl: sum_g / n,
            mean_max_apl: sum_max / n,
            mean_dev_apl: sum_dev / n,
        }
    }
}

impl Mapper for RandomMapper {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping {
        let mut rng = SmallRng::seed_from_u64(seed);
        RandomMapper::draw(inst, &mut rng)
    }
}

/// Averages of the evaluation metrics over `samples` random mappings —
/// the "Random" row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomAverages {
    pub samples: usize,
    pub mean_g_apl: f64,
    pub mean_max_apl: f64,
    pub mean_dev_apl: f64,
}

/// Estimate the random-mapping averages (g-APL, max-APL, dev-APL) over
/// `samples` draws.
#[deprecated(
    since = "0.3.0",
    note = "use RandomMapper::averages; see DESIGN.md §10.4 for the API mapping"
)]
pub fn random_averages(inst: &ObmInstance, samples: usize, seed: u64) -> RandomAverages {
    RandomMapper::averages(inst, samples, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn inst() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..16).map(|j| 0.1 * (j + 1) as f64).collect();
        ObmInstance::new(tiles, vec![0, 8, 16], c, vec![0.01; 16])
    }

    #[test]
    fn random_mapping_is_valid_and_seeded() {
        let inst = inst();
        let a = RandomMapper.map(&inst, 1);
        let b = RandomMapper.map(&inst, 1);
        let c = RandomMapper.map(&inst, 2);
        assert!(a.is_valid_for(&inst));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn averages_are_finite_and_ordered() {
        let inst = inst();
        let avg = RandomMapper::averages(&inst, 200, 3);
        assert!(avg.mean_g_apl > 0.0);
        assert!(avg.mean_max_apl >= avg.mean_g_apl); // max ≥ weighted mean
        assert!(avg.mean_dev_apl >= 0.0);
    }

    #[test]
    fn deprecated_free_fn_matches_canonical_home() {
        let inst = inst();
        #[allow(deprecated)]
        let shim = random_averages(&inst, 50, 3);
        assert_eq!(shim, RandomMapper::averages(&inst, 50, 3));
    }

    #[test]
    fn fewer_threads_than_tiles() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tiles, vec![0, 5], vec![1.0; 5], vec![0.0; 5]);
        let m = RandomMapper.map(&inst, 9);
        assert!(m.is_valid_for(&inst));
        assert_eq!(m.num_threads(), 5);
    }
}
