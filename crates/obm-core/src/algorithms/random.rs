//! Uniformly random mapping — the baseline population of the paper's
//! Table 1 ("Random" column is the average over >10⁴ random mappings).

use crate::algorithms::Mapper;
use crate::problem::{Mapping, ObmInstance};
use noc_model::TileId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Draws one uniformly random injective mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomMapper;

impl RandomMapper {
    /// Draw a random mapping using an existing RNG (used by Monte-Carlo
    /// and simulated annealing for their initial states).
    pub fn draw(inst: &ObmInstance, rng: &mut SmallRng) -> Mapping {
        let mut tiles: Vec<TileId> = (0..inst.num_tiles()).map(TileId).collect();
        tiles.shuffle(rng);
        tiles.truncate(inst.num_threads());
        Mapping::new(tiles)
    }

    /// Estimate the random-mapping averages (g-APL, max-APL, dev-APL) over
    /// `samples` draws — the "Random" row of Table 1.
    ///
    /// Scoring fans out over the host's cores via
    /// [`BatchEvaluator::eval_many_parallel`], whose fixed-chunk contract
    /// makes the reports — and therefore these averages — bit-identical
    /// at any worker count (including the serial path).
    ///
    /// [`BatchEvaluator::eval_many_parallel`]: crate::batch::BatchEvaluator::eval_many_parallel
    pub fn averages(inst: &ObmInstance, samples: usize, seed: u64) -> RandomAverages {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        RandomMapper::averages_with_workers(inst, samples, seed, workers)
    }

    /// [`averages`](Self::averages) with an explicit worker count
    /// (bit-identical for any count by the evaluator's fixed-chunk
    /// contract).
    pub fn averages_with_workers(
        inst: &ObmInstance,
        samples: usize,
        seed: u64,
        workers: usize,
    ) -> RandomAverages {
        assert!(samples > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Draw the whole population up front and score it through the
        // batch evaluator (same draws, same report bits as the old
        // one-evaluate-per-draw loop).
        let pool: Vec<Mapping> = (0..samples)
            .map(|_| RandomMapper::draw(inst, &mut rng))
            .collect();
        let be = crate::batch::BatchEvaluator::new(inst);
        let reports = be.eval_many_parallel(&pool, workers);
        let mut sum_g = 0.0;
        let mut sum_max = 0.0;
        let mut sum_dev = 0.0;
        // Reports come back in pool order whatever the worker count, so
        // the ascending-sample summation order (and its f64 rounding) is
        // unchanged from the serial slab loop it replaces.
        for r in &reports {
            sum_g += r.g_apl;
            sum_max += r.max_apl;
            sum_dev += r.dev_apl;
        }
        let n = samples as f64;
        RandomAverages {
            samples,
            mean_g_apl: sum_g / n,
            mean_max_apl: sum_max / n,
            mean_dev_apl: sum_dev / n,
        }
    }
}

impl Mapper for RandomMapper {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping {
        let mut rng = SmallRng::seed_from_u64(seed);
        RandomMapper::draw(inst, &mut rng)
    }
}

/// Averages of the evaluation metrics over `samples` random mappings —
/// the "Random" row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomAverages {
    pub samples: usize,
    pub mean_g_apl: f64,
    pub mean_max_apl: f64,
    pub mean_dev_apl: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn inst() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..16).map(|j| 0.1 * (j + 1) as f64).collect();
        ObmInstance::new(tiles, vec![0, 8, 16], c, vec![0.01; 16])
    }

    #[test]
    fn random_mapping_is_valid_and_seeded() {
        let inst = inst();
        let a = RandomMapper.map(&inst, 1);
        let b = RandomMapper.map(&inst, 1);
        let c = RandomMapper.map(&inst, 2);
        assert!(a.is_valid_for(&inst));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn averages_are_finite_and_ordered() {
        let inst = inst();
        let avg = RandomMapper::averages(&inst, 200, 3);
        assert!(avg.mean_g_apl > 0.0);
        assert!(avg.mean_max_apl >= avg.mean_g_apl); // max ≥ weighted mean
        assert!(avg.mean_dev_apl >= 0.0);
    }

    #[test]
    fn averages_are_worker_count_invariant() {
        let inst = inst();
        // 600 samples > 2 × PAR_CHUNK, so the parallel path actually
        // engages; the fixed-chunk contract must keep every worker count
        // bit-identical to the serial evaluation.
        let serial = RandomMapper::averages_with_workers(&inst, 600, 11, 1);
        for workers in [2, 3, 8] {
            let par = RandomMapper::averages_with_workers(&inst, 600, 11, workers);
            assert_eq!(serial, par, "workers = {workers}");
        }
    }

    #[test]
    fn fewer_threads_than_tiles() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tiles, vec![0, 5], vec![1.0; 5], vec![0.0; 5]);
        let m = RandomMapper.map(&inst, 9);
        assert!(m.is_valid_for(&inst));
        assert_eq!(m.num_threads(), 5);
    }
}
