//! Exhaustive search over all mappings — exponential, for tiny instances
//! only. Used as the ground truth in tests and in the executable
//! NP-completeness reduction.

use crate::algorithms::Mapper;
use crate::eval::IncrementalEvaluator;
use crate::problem::{Mapping, ObmInstance};
use noc_model::TileId;

/// Exact minimizer of max-APL by exhaustive enumeration.
///
/// # Panics
/// `map` panics if the instance has more than [`BruteForce::MAX_THREADS`]
/// threads (the search is factorial).
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForce;

impl BruteForce {
    /// Safety limit on instance size (10! ≈ 3.6M states).
    pub const MAX_THREADS: usize = 10;

    fn search(inst: &ObmInstance) -> (Mapping, f64) {
        assert!(
            inst.num_threads() <= Self::MAX_THREADS,
            "instance too large for brute force"
        );
        let n_tiles = inst.num_tiles();
        let init = Mapping::identity(inst.num_threads());
        let mut ev = IncrementalEvaluator::new(inst, init.clone());
        let mut best = (init, f64::INFINITY);
        let mut used = vec![false; n_tiles];
        let mut stack: Vec<TileId> = Vec::with_capacity(inst.num_threads());
        // Depth-first over injective assignments; the evaluator is rebuilt
        // per leaf via moves, which keeps the inner loop allocation-free.
        fn recurse(
            inst: &ObmInstance,
            ev: &mut IncrementalEvaluator<'_>,
            used: &mut Vec<bool>,
            stack: &mut Vec<TileId>,
            best: &mut (Mapping, f64),
        ) {
            let j = stack.len();
            if j == inst.num_threads() {
                let val = ev.max_apl();
                if val < best.1 {
                    best.1 = val;
                    best.0 = ev.mapping().clone();
                }
                return;
            }
            for k in 0..inst.num_tiles() {
                if used[k] {
                    continue;
                }
                used[k] = true;
                stack.push(TileId(k));
                let prev = ev.mapping().tile_of(j);
                // Temporarily park thread j on tile k. The identity start
                // means threads j.. occupy tiles j.., which may collide
                // with k; swap contents to stay injective.
                ev.swap_tiles(prev, TileId(k));
                recurse(inst, ev, used, stack, best);
                ev.swap_tiles(prev, TileId(k));
                stack.pop();
                used[k] = false;
            }
        }
        recurse(inst, &mut ev, &mut used, &mut stack, &mut best);
        best
    }
}

impl Mapper for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn map(&self, inst: &ObmInstance, _seed: u64) -> Mapping {
        Self::search(inst).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{MonteCarlo, SortSelectSwap};
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn small_instance(c: Vec<f64>, bounds: Vec<usize>) -> ObmInstance {
        let mesh = Mesh::new(2, 3);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let m = c.iter().map(|x| x * 0.2).collect();
        ObmInstance::new(tiles, bounds, c, m)
    }

    #[test]
    fn brute_force_no_worse_than_heuristics() {
        let inst = small_instance(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], vec![0, 3, 6]);
        let bf = evaluate(&inst, &BruteForce.map(&inst, 0)).max_apl;
        let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0)).max_apl;
        let mc = evaluate(&inst, &MonteCarlo::with_samples(2000).map(&inst, 1)).max_apl;
        assert!(bf <= sss + 1e-9);
        assert!(bf <= mc + 1e-9);
    }

    #[test]
    fn brute_force_with_spare_tiles() {
        let inst = small_instance(vec![1.0, 5.0, 2.0, 4.0], vec![0, 2, 4]);
        let m = BruteForce.map(&inst, 0);
        assert!(m.is_valid_for(&inst));
        // Check against a full re-evaluation through the search's own
        // value channel.
        let val = evaluate(&inst, &m).max_apl;
        assert!((val - BruteForce::search(&inst).1).abs() < 1e-12);
    }

    #[test]
    fn single_thread_picks_cheapest_tile() {
        let mesh = Mesh::square(2);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tl, vec![0, 1], vec![1.0], vec![0.5]);
        let m = BruteForce.map(&inst, 0);
        let best_tile = (0..4)
            .map(TileId)
            .min_by(|&a, &b| {
                inst.placement_cost(0, a)
                    .partial_cmp(&inst.placement_cost(0, b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(m.tile_of(0), best_tile);
    }

    #[test]
    #[should_panic]
    fn oversized_instance_panics() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tl, vec![0, 16], vec![1.0; 16], vec![0.0; 16]);
        let _ = BruteForce.map(&inst, 0);
    }
}
