//! Mapping algorithms: the proposed sort-select-swap heuristic and the
//! three comparison algorithms of the paper's Section V.A (Global,
//! Monte-Carlo, simulated annealing), plus exact brute force for tiny
//! instances.

pub mod bnb;
pub mod brute;
pub mod global;
pub mod greedy;
pub mod hybrid;
pub mod mc;
pub mod random;
pub mod sa;
pub mod sss;

pub use bnb::BranchAndBound;
pub use brute::BruteForce;
pub use global::Global;
pub use greedy::BalancedGreedy;
pub use hybrid::HybridSssSa;
pub use mc::MonteCarlo;
pub use random::RandomMapper;
pub use sa::SimulatedAnnealing;
pub use sss::SortSelectSwap;

use crate::problem::{Mapping, ObmInstance};
use noc_telemetry::Probe;

/// A mapping algorithm.
///
/// Randomized algorithms derive their RNG from `seed`; deterministic ones
/// ignore it. All implementations return a mapping that is valid for the
/// instance (injective, in range).
pub trait Mapper {
    /// Short display name ("Global", "MC", "SA", "SSS", …).
    fn name(&self) -> &'static str;

    /// Compute a thread-to-tile mapping.
    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping;

    /// Like [`map`](Mapper::map), additionally streaming solver telemetry
    /// ([`SolverEvent`](noc_telemetry::SolverEvent)s) to `probe`.
    ///
    /// The probe must never influence the result: for any probe,
    /// `map_probed(inst, seed, probe) == map(inst, seed)`. The default
    /// implementation emits nothing, so existing mappers are unaffected;
    /// instrumented mappers ([`SortSelectSwap`], [`SimulatedAnnealing`])
    /// override it and route `map` through a
    /// [`NoopSink`](noc_telemetry::NoopSink).
    fn map_probed(&self, inst: &ObmInstance, seed: u64, probe: &mut dyn Probe) -> Mapping {
        let _ = probe;
        self.map(inst, seed)
    }
}

/// All 24 permutations of 4 window slots, used by the SSS sliding-window
/// swap (Algorithm 2, Step 3) and enumerated in lexicographic order so the
/// identity comes first (ties keep the current assignment).
pub(crate) const PERMS4: [[usize; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

#[cfg(test)]
mod tests {
    use super::{Global, Mapper, PERMS4};

    #[test]
    fn default_map_probed_delegates_to_map() {
        use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
        use noc_telemetry::RingSink;
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        let inst = crate::problem::ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16]);
        // Global does not override map_probed: same result, no events.
        let mut sink = RingSink::new(8);
        assert_eq!(Global.map_probed(&inst, 0, &mut sink), Global.map(&inst, 0));
        assert_eq!(sink.len(), 0);
    }

    #[test]
    fn perms4_are_all_distinct_permutations() {
        let mut seen = std::collections::HashSet::new();
        for p in PERMS4 {
            let mut sorted = p;
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3], "not a permutation: {p:?}");
            assert!(seen.insert(p), "duplicate permutation {p:?}");
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn identity_first() {
        assert_eq!(PERMS4[0], [0, 1, 2, 3]);
    }
}
