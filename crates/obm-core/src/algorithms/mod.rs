//! Mapping algorithms: the proposed sort-select-swap heuristic and the
//! three comparison algorithms of the paper's Section V.A (Global,
//! Monte-Carlo, simulated annealing), plus exact brute force for tiny
//! instances.

pub mod bnb;
pub mod brute;
pub mod global;
pub mod greedy;
pub mod hybrid;
pub mod mc;
pub mod random;
pub mod sa;
pub mod sss;

pub use bnb::BranchAndBound;
pub use brute::BruteForce;
pub use global::Global;
pub use greedy::BalancedGreedy;
pub use hybrid::HybridSssSa;
pub use mc::MonteCarlo;
pub use random::RandomMapper;
pub use sa::SimulatedAnnealing;
pub use sss::SortSelectSwap;

use crate::problem::{Mapping, ObmInstance};

/// A mapping algorithm.
///
/// Randomized algorithms derive their RNG from `seed`; deterministic ones
/// ignore it. All implementations return a mapping that is valid for the
/// instance (injective, in range).
pub trait Mapper {
    /// Short display name ("Global", "MC", "SA", "SSS", …).
    fn name(&self) -> &'static str;

    /// Compute a thread-to-tile mapping.
    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping;
}

/// All 24 permutations of 4 window slots, used by the SSS sliding-window
/// swap (Algorithm 2, Step 3) and enumerated in lexicographic order so the
/// identity comes first (ties keep the current assignment).
pub(crate) const PERMS4: [[usize; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

#[cfg(test)]
mod tests {
    use super::PERMS4;

    #[test]
    fn perms4_are_all_distinct_permutations() {
        let mut seen = std::collections::HashSet::new();
        for p in PERMS4 {
            let mut sorted = p;
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3], "not a permutation: {p:?}");
            assert!(seen.insert(p), "duplicate permutation {p:?}");
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn identity_first() {
        assert_eq!(PERMS4[0], [0, 1, 2, 3]);
    }
}
