//! Mapping algorithms: the proposed sort-select-swap heuristic and the
//! three comparison algorithms of the paper's Section V.A (Global,
//! Monte-Carlo, simulated annealing), plus exact brute force for tiny
//! instances.

pub mod bnb;
pub mod brute;
pub mod global;
pub mod greedy;
pub mod hybrid;
pub mod mc;
pub mod random;
pub mod sa;
pub mod sss;

pub use bnb::BranchAndBound;
pub use brute::BruteForce;
pub use global::Global;
pub use greedy::BalancedGreedy;
pub use hybrid::HybridSssSa;
pub use mc::MonteCarlo;
pub use random::RandomMapper;
pub use sa::SimulatedAnnealing;
pub use sss::SortSelectSwap;

use crate::cancel::CancelToken;
use crate::objective::Objective;
use crate::problem::{Mapping, ObmInstance};
use noc_telemetry::Probe;

/// A rejected iteration/sample budget (the builder-validation convention:
/// constructors that used to `assert!` now have `try_*` twins returning
/// this typed error; the panicking forms remain but state the violated
/// rule in their message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetError {
    /// A simulated-annealing iteration budget of 0 was requested.
    ZeroIterations,
    /// A Monte-Carlo sample budget of 0 was requested.
    ZeroSamples,
    /// A restart count of 0 was requested.
    ZeroRestarts,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::ZeroIterations => {
                write!(f, "iteration budget must be at least 1 (got 0)")
            }
            BudgetError::ZeroSamples => write!(f, "sample budget must be at least 1 (got 0)"),
            BudgetError::ZeroRestarts => write!(f, "restart count must be at least 1 (got 0)"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A mapping algorithm.
///
/// Randomized algorithms derive their RNG from `seed`; deterministic ones
/// ignore it. All implementations return a mapping that is valid for the
/// instance (injective, in range).
pub trait Mapper {
    /// Short display name ("Global", "MC", "SA", "SSS", …).
    fn name(&self) -> &'static str;

    /// Compute a thread-to-tile mapping.
    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping;

    /// Like [`map`](Mapper::map), additionally streaming solver telemetry
    /// ([`SolverEvent`](noc_telemetry::SolverEvent)s) to `probe`.
    ///
    /// The probe must never influence the result: for any probe,
    /// `map_probed(inst, seed, probe) == map(inst, seed)`. The default
    /// implementation emits nothing, so existing mappers are unaffected;
    /// instrumented mappers ([`SortSelectSwap`], [`SimulatedAnnealing`])
    /// override it and route `map` through a
    /// [`NoopSink`](noc_telemetry::NoopSink).
    fn map_probed(&self, inst: &ObmInstance, seed: u64, probe: &mut dyn Probe) -> Mapping {
        let _ = probe;
        self.map(inst, seed)
    }

    /// Like [`map_probed`](Mapper::map_probed), additionally polling a
    /// [`CancelToken`] so a deadline or an external cancel stops the
    /// search early. Returns `None` when the token fired before a result
    /// was produced; partial work is discarded (never a half-optimized
    /// mapping), which is what keeps portfolio merges deterministic.
    ///
    /// The token contract mirrors the probe contract: a token that never
    /// fires must not perturb the search — `map_cancellable(inst, seed,
    /// &CancelToken::never(), probe) == Some(map(inst, seed))` bit-for-bit.
    /// The default implementation checks once up front and then runs to
    /// completion; long-running mappers ([`SimulatedAnnealing`],
    /// [`MonteCarlo`], [`HybridSssSa`], [`SortSelectSwap`]) override it to
    /// poll inside their inner loops.
    fn map_cancellable(
        &self,
        inst: &ObmInstance,
        seed: u64,
        token: &CancelToken,
        probe: &mut dyn Probe,
    ) -> Option<Mapping> {
        if token.is_cancelled() {
            return None;
        }
        Some(self.map_probed(inst, seed, probe))
    }

    /// Compute a mapping optimized for an arbitrary [`Objective`].
    ///
    /// Every algorithm in this crate searches the min-max-APL landscape
    /// natively, so the default implementation runs [`map`](Mapper::map)
    /// and — when the objective is not [`MinMaxApl`]-equivalent —
    /// polishes the result with a deterministic best-improvement
    /// pairwise-exchange pass
    /// ([`refine_for_objective`](crate::objective::refine_for_objective))
    /// scored under `objective`. For `MinMaxApl` itself this is
    /// bit-identical to `map` (no refinement runs), which keeps every
    /// pre-objective golden result valid (proptested in
    /// `tests/properties.rs`).
    fn map_objective(&self, inst: &ObmInstance, seed: u64, objective: &dyn Objective) -> Mapping {
        let mapping = self.map(inst, seed);
        if objective.is_min_max_apl() {
            mapping
        } else {
            crate::objective::refine_for_objective(
                inst,
                mapping,
                objective,
                OBJECTIVE_REFINE_PASSES,
            )
        }
    }
}

/// Pass budget of the [`Mapper::map_objective`] polishing stage. Each pass
/// is one full best-improvement sweep over thread/tile exchanges; the
/// refinement stops early once a sweep finds no improving exchange, so
/// this is a ceiling, not a fixed cost.
pub const OBJECTIVE_REFINE_PASSES: usize = 32;

/// All 24 permutations of 4 window slots, used by the SSS sliding-window
/// swap (Algorithm 2, Step 3) and enumerated in lexicographic order so the
/// identity comes first (ties keep the current assignment).
pub(crate) const PERMS4: [[usize; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

#[cfg(test)]
mod tests {
    use super::{Global, Mapper, PERMS4};

    #[test]
    fn default_map_probed_delegates_to_map() {
        use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
        use noc_telemetry::RingSink;
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        let inst = crate::problem::ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16]);
        // Global does not override map_probed: same result, no events.
        let mut sink = RingSink::new(8);
        assert_eq!(Global.map_probed(&inst, 0, &mut sink), Global.map(&inst, 0));
        assert_eq!(sink.len(), 0);
    }

    #[test]
    fn perms4_are_all_distinct_permutations() {
        let mut seen = std::collections::HashSet::new();
        for p in PERMS4 {
            let mut sorted = p;
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3], "not a permutation: {p:?}");
            assert!(seen.insert(p), "duplicate permutation {p:?}");
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn identity_first() {
        assert_eq!(PERMS4[0], [0, 1, 2, 3]);
    }
}
