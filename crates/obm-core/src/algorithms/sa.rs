//! Simulated-annealing baseline for the OBM problem (paper §V.A,
//! comparison algorithm 3).
//!
//! A "move" swaps the mapping of two randomly chosen threads (the paper's
//! definition); when the instance has spare tiles, a move may also relocate
//! a thread to a free tile. Cooling is geometric; the iteration budget is
//! the runtime knob the paper sweeps in Figure 12.

use crate::algorithms::{random::RandomMapper, BudgetError, Mapper};
use crate::cancel::CancelToken;
use crate::eval::IncrementalEvaluator;
use crate::problem::{Mapping, ObmInstance};
use noc_model::TileId;
use noc_telemetry::{NoopSink, Probe, SolverEvent};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of [`SolverEvent::TemperatureStep`] checkpoints emitted over a
/// probed run: one every `iterations / SA_CHECKPOINTS` iterations (at
/// least one iteration apart), keeping the telemetry volume independent
/// of the iteration budget.
const SA_CHECKPOINTS: usize = 64;

/// Iterations between [`CancelToken`] polls (power of two so the check
/// compiles to a mask test; ~1k keeps cancellation latency in the tens of
/// microseconds without measurable hot-loop cost).
const CANCEL_POLL_MASK: usize = 1024 - 1;

/// Simulated annealing over thread-swap moves, minimizing max-APL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedAnnealing {
    /// Total number of proposed moves (per restart).
    pub iterations: usize,
    /// Independent restarts (run in parallel; the best final mapping
    /// wins). 1 = the paper's plain SA.
    pub restarts: usize,
    /// Initial temperature as a fraction of the initial max-APL
    /// (self-scaling keeps the schedule meaningful across instances).
    pub initial_temp_fraction: f64,
    /// Final temperature as a fraction of the initial temperature.
    pub final_temp_fraction: f64,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            iterations: 100_000,
            restarts: 1,
            initial_temp_fraction: 0.05,
            final_temp_fraction: 1e-4,
        }
    }
}

impl SimulatedAnnealing {
    /// Constructor with an explicit iteration budget.
    ///
    /// # Panics
    /// Panics on a zero budget; [`try_with_iterations`]
    /// (SimulatedAnnealing::try_with_iterations) is the fallible twin.
    pub fn with_iterations(iterations: usize) -> Self {
        match Self::try_with_iterations(iterations) {
            Ok(sa) => sa,
            Err(e) => panic!("SimulatedAnnealing::with_iterations: {e}"),
        }
    }

    /// Fallible constructor with an explicit iteration budget (the
    /// builder-validation convention: zero budgets are rejected with a
    /// typed [`BudgetError`] instead of a panic deep inside `map`).
    pub fn try_with_iterations(iterations: usize) -> Result<Self, BudgetError> {
        if iterations == 0 {
            return Err(BudgetError::ZeroIterations);
        }
        Ok(SimulatedAnnealing {
            iterations,
            ..SimulatedAnnealing::default()
        })
    }

    /// Check the configured budgets (`iterations`, `restarts` — both must
    /// be at least 1, or `map` would have nothing to return).
    pub fn validate(&self) -> Result<(), BudgetError> {
        if self.iterations == 0 {
            return Err(BudgetError::ZeroIterations);
        }
        if self.restarts == 0 {
            return Err(BudgetError::ZeroRestarts);
        }
        Ok(())
    }
}

impl Mapper for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "SA"
    }

    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping {
        self.map_probed(inst, seed, &mut NoopSink)
    }

    fn map_probed(&self, inst: &ObmInstance, seed: u64, probe: &mut dyn Probe) -> Mapping {
        self.map_cancellable(inst, seed, &CancelToken::never(), probe)
            .expect("a never-firing token cannot cancel the anneal")
    }

    fn map_cancellable(
        &self,
        inst: &ObmInstance,
        seed: u64,
        token: &CancelToken,
        probe: &mut dyn Probe,
    ) -> Option<Mapping> {
        if let Err(e) = self.validate() {
            panic!("SimulatedAnnealing::map: {e}");
        }
        if self.restarts > 1 {
            // Restarts run on crossbeam scope threads, and `&mut dyn Probe`
            // cannot be shared across them (no Sync bound, and interleaved
            // events from concurrent restarts would be meaningless anyway),
            // so the parallel path emits no solver events. Probe a
            // single-restart configuration to trace the annealing schedule.
            // Parallel independent restarts with disjoint seed streams; the
            // token is shared, so one deadline stops every restart. A
            // cancelled restart poisons the whole run (all-or-nothing keeps
            // the result independent of which restart was interrupted).
            let results = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..self.restarts)
                    .map(|r| {
                        let cfg = SimulatedAnnealing {
                            restarts: 1,
                            ..*self
                        };
                        let rseed =
                            seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(r as u64 + 1));
                        scope.spawn(move |_| {
                            let m = cfg.map_cancellable(inst, rseed, token, &mut NoopSink)?;
                            let v = crate::eval::evaluate(inst, &m).max_apl;
                            Some((v, m))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("SA restart panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("crossbeam scope");
            let mut best: Option<(f64, Mapping)> = None;
            for r in results {
                let (v, m) = r?;
                if best.as_ref().is_none_or(|(b, _)| v < *b) {
                    best = Some((v, m));
                }
            }
            return best.map(|(_, m)| m);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let init = RandomMapper::draw(inst, &mut rng);
        let mut ev = IncrementalEvaluator::new(inst, init);
        let mut cur = ev.max_apl();
        let mut best = cur;
        let mut best_mapping = ev.mapping().clone();

        let t0 = (cur * self.initial_temp_fraction).max(1e-9);
        let t_end = t0 * self.final_temp_fraction;
        // Geometric schedule hitting t_end exactly at the last iteration.
        let alpha = (t_end / t0).powf(1.0 / self.iterations as f64);
        let mut temp = t0;
        let num_tiles = inst.num_tiles();
        let enabled = probe.is_enabled();
        let checkpoint = (self.iterations / SA_CHECKPOINTS).max(1);
        let mut accepted_since_last: u64 = 0;

        for it in 0..self.iterations {
            if it & CANCEL_POLL_MASK == 0 && token.is_cancelled() {
                return None;
            }
            // Pick two distinct tiles; swapping their contents covers both
            // thread↔thread swaps and thread→hole relocations.
            let a = TileId(rng.gen_range(0..num_tiles));
            let mut b = TileId(rng.gen_range(0..num_tiles));
            while b == a {
                b = TileId(rng.gen_range(0..num_tiles));
            }
            ev.swap_tiles(a, b);
            let cand = ev.max_apl();
            let delta = cand - cur;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp();
            if accept {
                cur = cand;
                accepted_since_last += 1;
                if cur < best {
                    best = cur;
                    best_mapping = ev.mapping().clone();
                }
            } else {
                ev.swap_tiles(a, b); // revert
            }
            temp *= alpha;
            if enabled && (it + 1).is_multiple_of(checkpoint) {
                probe.on_solver_event(&SolverEvent::TemperatureStep {
                    iteration: (it + 1) as u64,
                    temperature: temp,
                    objective: cur,
                    accepted_since_last,
                });
                accepted_since_last = 0;
            }
        }
        debug_assert!(best_mapping.is_valid_for(inst));
        let _ = best;
        Some(best_mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn inst() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..4).flat_map(|_| [0.1, 0.2, 0.3, 0.4]).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.0; 16])
    }

    #[test]
    fn sa_improves_over_its_random_start() {
        let inst = inst();
        let start = evaluate(&inst, &RandomMapper.map(&inst, 7)).max_apl;
        let sa = evaluate(
            &inst,
            &SimulatedAnnealing::with_iterations(20_000).map(&inst, 7),
        );
        assert!(sa.max_apl < start, "SA {} vs start {}", sa.max_apl, start);
    }

    #[test]
    fn sa_approaches_known_optimum_on_fig5() {
        // Figure 5's optimum is 10.3375 cycles for every app. SA with a
        // decent budget should get within 2%.
        let inst = inst();
        let sa = evaluate(
            &inst,
            &SimulatedAnnealing::with_iterations(50_000).map(&inst, 3),
        );
        assert!(
            sa.max_apl < 10.3375 * 1.02,
            "SA max-APL {} too far from optimum",
            sa.max_apl
        );
    }

    #[test]
    fn quality_improves_with_budget_on_average() {
        // Diminishing-returns shape of Figure 12: tiny budgets must be
        // worse than large ones when averaged over seeds.
        let inst = inst();
        let avg = |iters: usize| -> f64 {
            (0..5)
                .map(|s| {
                    evaluate(
                        &inst,
                        &SimulatedAnnealing::with_iterations(iters).map(&inst, s),
                    )
                    .max_apl
                })
                .sum::<f64>()
                / 5.0
        };
        let lo = avg(50);
        let hi = avg(20_000);
        assert!(hi < lo, "more budget should help: {hi} !< {lo}");
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = inst();
        let sa = SimulatedAnnealing::with_iterations(1000);
        assert_eq!(sa.map(&inst, 4), sa.map(&inst, 4));
    }

    #[test]
    fn restarts_never_hurt() {
        let inst = inst();
        let single = SimulatedAnnealing::with_iterations(2_000);
        let multi = SimulatedAnnealing {
            restarts: 4,
            ..single
        };
        // The multi-restart result includes seed stream 1 of the single
        // run's family; quality must be at least as good on average.
        let avg = |sa: &SimulatedAnnealing| -> f64 {
            (0..4)
                .map(|s| evaluate(&inst, &sa.map(&inst, s)).max_apl)
                .sum::<f64>()
                / 4.0
        };
        assert!(avg(&multi) <= avg(&single) + 0.05);
    }

    #[test]
    fn probed_sa_matches_map_and_checkpoints_schedule() {
        use noc_telemetry::{RingSink, SolverEvent};
        let inst = inst();
        let sa = SimulatedAnnealing::with_iterations(1_000);
        let mut sink = RingSink::new(4096);
        let probed = sa.map_probed(&inst, 4, &mut sink);
        assert_eq!(probed, sa.map(&inst, 4), "probe perturbed the anneal");
        let steps: Vec<_> = sink
            .solver_events()
            .filter_map(|e| match e {
                SolverEvent::TemperatureStep {
                    iteration,
                    temperature,
                    accepted_since_last,
                    ..
                } => Some((*iteration, *temperature, *accepted_since_last)),
                _ => None,
            })
            .collect();
        // 1000 iterations / 64 checkpoints → one event every 15 iterations.
        assert!(
            (60..=70).contains(&steps.len()),
            "unexpected checkpoint count {}",
            steps.len()
        );
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0, "iterations must increase");
            assert!(w[0].1 > w[1].1, "geometric cooling must decrease temp");
        }
        let accepted: u64 = steps.iter().map(|s| s.2).sum();
        assert!(accepted <= 1_000);
    }

    #[test]
    fn multi_restart_probed_emits_nothing_but_matches() {
        use noc_telemetry::RingSink;
        let inst = inst();
        let sa = SimulatedAnnealing {
            restarts: 3,
            ..SimulatedAnnealing::with_iterations(500)
        };
        let mut sink = RingSink::new(64);
        let probed = sa.map_probed(&inst, 1, &mut sink);
        assert_eq!(probed, sa.map(&inst, 1));
        assert_eq!(sink.len(), 0, "parallel restarts must not emit events");
    }

    #[test]
    fn try_with_iterations_rejects_zero() {
        assert_eq!(
            SimulatedAnnealing::try_with_iterations(0),
            Err(BudgetError::ZeroIterations)
        );
        assert!(SimulatedAnnealing::try_with_iterations(1).is_ok());
    }

    #[test]
    #[should_panic(expected = "iteration budget must be at least 1")]
    fn with_iterations_zero_panics_with_message() {
        let _ = SimulatedAnnealing::with_iterations(0);
    }

    #[test]
    fn cancelled_token_yields_none_and_quiet_token_matches_map() {
        let inst = inst();
        let sa = SimulatedAnnealing::with_iterations(1_000);
        let fired = CancelToken::new();
        fired.cancel();
        assert!(sa
            .map_cancellable(&inst, 4, &fired, &mut NoopSink)
            .is_none());
        let quiet = CancelToken::never();
        assert_eq!(
            sa.map_cancellable(&inst, 4, &quiet, &mut NoopSink),
            Some(sa.map(&inst, 4))
        );
    }

    #[test]
    fn cancelled_multi_restart_yields_none() {
        let inst = inst();
        let sa = SimulatedAnnealing {
            restarts: 3,
            ..SimulatedAnnealing::with_iterations(500)
        };
        let fired = CancelToken::new();
        fired.cancel();
        assert!(sa
            .map_cancellable(&inst, 1, &fired, &mut NoopSink)
            .is_none());
    }

    #[test]
    fn works_with_spare_tiles() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tiles, vec![0, 5, 10], vec![1.0; 10], vec![0.1; 10]);
        let m = SimulatedAnnealing::with_iterations(2000).map(&inst, 0);
        assert!(m.is_valid_for(&inst));
    }
}
