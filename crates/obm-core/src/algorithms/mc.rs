//! Monte-Carlo baseline for the OBM problem: draw many random mappings and
//! keep the one with the smallest max-APL (paper §V.A, comparison
//! algorithm 2; the paper uses 10⁴ draws).
//!
//! The draws are embarrassingly parallel; they are fanned out over scoped
//! crossbeam threads with per-worker RNG streams and reduced with a plain
//! min — following the data-parallel idiom of the workspace's HPC guides
//! (no shared mutable state, deterministic given the seed).

use crate::algorithms::{random::RandomMapper, BudgetError, Mapper};
use crate::cancel::CancelToken;
use crate::problem::{Mapping, ObmInstance};
use noc_telemetry::{NoopSink, Probe};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Samples between [`CancelToken`] polls (power of two: mask test). A draw
/// plus evaluation is much heavier than one SA move, so MC polls more
/// often than SA without measurable cost.
const CANCEL_POLL_MASK: usize = 64 - 1;

/// Monte-Carlo search over random mappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    /// Number of random mappings to draw (paper: 10⁴).
    pub samples: usize,
    /// Worker threads (1 = sequential; draws are split evenly).
    pub workers: usize,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            samples: 10_000,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        }
    }
}

impl MonteCarlo {
    /// Sequential constructor with an explicit sample budget.
    ///
    /// # Panics
    /// Panics on a zero budget; [`try_with_samples`]
    /// (MonteCarlo::try_with_samples) is the fallible twin.
    pub fn with_samples(samples: usize) -> Self {
        match Self::try_with_samples(samples) {
            Ok(mc) => mc,
            Err(e) => panic!("MonteCarlo::with_samples: {e}"),
        }
    }

    /// Fallible constructor with an explicit sample budget (the
    /// builder-validation convention: zero budgets are rejected with a
    /// typed [`BudgetError`] instead of a panic deep inside `map`).
    pub fn try_with_samples(samples: usize) -> Result<Self, BudgetError> {
        if samples == 0 {
            return Err(BudgetError::ZeroSamples);
        }
        Ok(MonteCarlo {
            samples,
            workers: 1,
        })
    }

    /// Check the configured budget (`samples` must be at least 1, or `map`
    /// would have nothing to return).
    pub fn validate(&self) -> Result<(), BudgetError> {
        if self.samples == 0 {
            return Err(BudgetError::ZeroSamples);
        }
        Ok(())
    }

    fn best_of(
        inst: &ObmInstance,
        samples: usize,
        seed: u64,
        token: &CancelToken,
    ) -> Option<(f64, Mapping)> {
        // Draws are batched at the cancellation-poll cadence and scored
        // through the batch evaluator's objective kernel: the RNG stream,
        // poll points, best-keeping order, and objective bits all match
        // the old one-draw-one-evaluate loop exactly.
        let mut rng = SmallRng::seed_from_u64(seed);
        let be = crate::batch::BatchEvaluator::new(inst);
        let mut best: Option<(f64, Mapping)> = None;
        let mut pool: Vec<Mapping> = Vec::with_capacity(CANCEL_POLL_MASK + 1);
        let mut objs: Vec<f64> = Vec::with_capacity(CANCEL_POLL_MASK + 1);
        let mut drawn = 0;
        while drawn < samples {
            if token.is_cancelled() {
                return None;
            }
            let quota = (samples - drawn).min(CANCEL_POLL_MASK + 1);
            pool.clear();
            pool.extend((0..quota).map(|_| RandomMapper::draw(inst, &mut rng)));
            objs.clear();
            be.objectives_into(&pool, &mut objs);
            for (m, &v) in pool.iter().zip(&objs) {
                if best.as_ref().is_none_or(|(b, _)| v < *b) {
                    best = Some((v, m.clone()));
                }
            }
            drawn += quota;
        }
        Some(best.expect("samples > 0"))
    }
}

impl Mapper for MonteCarlo {
    fn name(&self) -> &'static str {
        "MC"
    }

    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping {
        self.map_cancellable(inst, seed, &CancelToken::never(), &mut NoopSink)
            .expect("a never-firing token cannot cancel the search")
    }

    fn map_cancellable(
        &self,
        inst: &ObmInstance,
        seed: u64,
        token: &CancelToken,
        probe: &mut dyn Probe,
    ) -> Option<Mapping> {
        let _ = probe; // MC emits no solver events.
        if let Err(e) = self.validate() {
            panic!("MonteCarlo::map: {e}");
        }
        let workers = self.workers.max(1).min(self.samples);
        if workers == 1 {
            return MonteCarlo::best_of(inst, self.samples, seed, token).map(|(_, m)| m);
        }
        let per = self.samples / workers;
        let extra = self.samples % workers;
        // The token is shared across workers; a fired token poisons the
        // whole draw (all-or-nothing keeps the result independent of which
        // worker was interrupted).
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let quota = per + usize::from(w < extra);
                    // Distinct, deterministic RNG stream per worker.
                    let wseed =
                        seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(w as u64 + 1));
                    scope.spawn(move |_| MonteCarlo::best_of(inst, quota, wseed, token))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("MC worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("crossbeam scope");
        let mut best: Option<(f64, Mapping)> = None;
        for r in results {
            let (v, m) = r?;
            if best.as_ref().is_none_or(|(b, _)| v < *b) {
                best = Some((v, m));
            }
        }
        best.map(|(_, m)| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn inst() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..16).map(|j| 0.2 + 0.1 * (j % 4) as f64).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.02; 16])
    }

    #[test]
    fn more_samples_never_worse() {
        let inst = inst();
        let small = evaluate(&inst, &MonteCarlo::with_samples(10).map(&inst, 5)).max_apl;
        // Same seed stream prefix: 1000 samples include the first 10.
        let large = evaluate(&inst, &MonteCarlo::with_samples(1000).map(&inst, 5)).max_apl;
        assert!(large <= small + 1e-12);
    }

    #[test]
    fn beats_single_random_draw_on_average() {
        let inst = inst();
        let mc = evaluate(&inst, &MonteCarlo::with_samples(500).map(&inst, 1)).max_apl;
        let avg = RandomMapper::averages(&inst, 200, 3).mean_max_apl;
        assert!(mc < avg);
    }

    #[test]
    fn try_with_samples_rejects_zero() {
        assert_eq!(
            MonteCarlo::try_with_samples(0),
            Err(BudgetError::ZeroSamples)
        );
        assert!(MonteCarlo::try_with_samples(1).is_ok());
    }

    #[test]
    #[should_panic(expected = "sample budget must be at least 1")]
    fn with_samples_zero_panics_with_message() {
        let _ = MonteCarlo::with_samples(0);
    }

    #[test]
    fn cancelled_token_yields_none_sequential_and_parallel() {
        let inst = inst();
        let fired = CancelToken::new();
        fired.cancel();
        assert!(MonteCarlo::with_samples(100)
            .map_cancellable(&inst, 2, &fired, &mut NoopSink)
            .is_none());
        let par = MonteCarlo {
            samples: 100,
            workers: 4,
        };
        assert!(par
            .map_cancellable(&inst, 2, &fired, &mut NoopSink)
            .is_none());
        // And a quiet token matches map bit-for-bit.
        assert_eq!(
            par.map_cancellable(&inst, 2, &CancelToken::never(), &mut NoopSink),
            Some(par.map(&inst, 2))
        );
    }

    #[test]
    fn parallel_matches_quality_of_sequential() {
        let inst = inst();
        let seq = evaluate(&inst, &MonteCarlo::with_samples(400).map(&inst, 2)).max_apl;
        let par = MonteCarlo {
            samples: 400,
            workers: 4,
        };
        let parv = evaluate(&inst, &par.map(&inst, 2)).max_apl;
        // Different RNG streams, but both are 400-draw minima; they should
        // land close (loose sanity bound).
        assert!((seq - parv).abs() / seq < 0.15, "seq {seq} vs par {parv}");
    }

    #[test]
    fn deterministic_given_seed_and_workers() {
        let inst = inst();
        let cfg = MonteCarlo {
            samples: 300,
            workers: 3,
        };
        assert_eq!(cfg.map(&inst, 11), cfg.map(&inst, 11));
    }
}
