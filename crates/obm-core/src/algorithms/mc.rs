//! Monte-Carlo baseline for the OBM problem: draw many random mappings and
//! keep the one with the smallest max-APL (paper §V.A, comparison
//! algorithm 2; the paper uses 10⁴ draws).
//!
//! The draws are embarrassingly parallel; they are fanned out over scoped
//! crossbeam threads with per-worker RNG streams and reduced with a plain
//! min — following the data-parallel idiom of the workspace's HPC guides
//! (no shared mutable state, deterministic given the seed).

use crate::algorithms::{random::RandomMapper, Mapper};
use crate::eval::evaluate;
use crate::problem::{Mapping, ObmInstance};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Monte-Carlo search over random mappings.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    /// Number of random mappings to draw (paper: 10⁴).
    pub samples: usize,
    /// Worker threads (1 = sequential; draws are split evenly).
    pub workers: usize,
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo {
            samples: 10_000,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get().min(8)),
        }
    }
}

impl MonteCarlo {
    /// Sequential constructor with an explicit sample budget.
    pub fn with_samples(samples: usize) -> Self {
        assert!(samples > 0);
        MonteCarlo {
            samples,
            workers: 1,
        }
    }

    fn best_of(inst: &ObmInstance, samples: usize, seed: u64) -> (f64, Mapping) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut best: Option<(f64, Mapping)> = None;
        for _ in 0..samples {
            let m = RandomMapper::draw(inst, &mut rng);
            let v = evaluate(inst, &m).max_apl;
            if best.as_ref().is_none_or(|(b, _)| v < *b) {
                best = Some((v, m));
            }
        }
        best.expect("samples > 0")
    }
}

impl Mapper for MonteCarlo {
    fn name(&self) -> &'static str {
        "MC"
    }

    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping {
        assert!(self.samples > 0);
        let workers = self.workers.max(1).min(self.samples);
        if workers == 1 {
            return MonteCarlo::best_of(inst, self.samples, seed).1;
        }
        let per = self.samples / workers;
        let extra = self.samples % workers;
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let quota = per + usize::from(w < extra);
                    // Distinct, deterministic RNG stream per worker.
                    let wseed =
                        seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(w as u64 + 1));
                    scope.spawn(move |_| MonteCarlo::best_of(inst, quota, wseed))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("MC worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("crossbeam scope");
        results
            .into_iter()
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite max-APL"))
            .expect("at least one worker")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn inst() -> ObmInstance {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let c: Vec<f64> = (0..16).map(|j| 0.2 + 0.1 * (j % 4) as f64).collect();
        ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, vec![0.02; 16])
    }

    #[test]
    fn more_samples_never_worse() {
        let inst = inst();
        let small = evaluate(&inst, &MonteCarlo::with_samples(10).map(&inst, 5)).max_apl;
        // Same seed stream prefix: 1000 samples include the first 10.
        let large = evaluate(&inst, &MonteCarlo::with_samples(1000).map(&inst, 5)).max_apl;
        assert!(large <= small + 1e-12);
    }

    #[test]
    fn beats_single_random_draw_on_average() {
        let inst = inst();
        let mc = evaluate(&inst, &MonteCarlo::with_samples(500).map(&inst, 1)).max_apl;
        let avg = crate::algorithms::random::random_averages(&inst, 200, 3).mean_max_apl;
        assert!(mc < avg);
    }

    #[test]
    fn parallel_matches_quality_of_sequential() {
        let inst = inst();
        let seq = evaluate(&inst, &MonteCarlo::with_samples(400).map(&inst, 2)).max_apl;
        let par = MonteCarlo {
            samples: 400,
            workers: 4,
        };
        let parv = evaluate(&inst, &par.map(&inst, 2)).max_apl;
        // Different RNG streams, but both are 400-draw minima; they should
        // land close (loose sanity bound).
        assert!((seq - parv).abs() / seq < 0.15, "seq {seq} vs par {parv}");
    }

    #[test]
    fn deterministic_given_seed_and_workers() {
        let inst = inst();
        let cfg = MonteCarlo {
            samples: 300,
            workers: 3,
        };
        assert_eq!(cfg.map(&inst, 11), cfg.map(&inst, 11));
    }
}
