//! The *Global* baseline: minimize the overall packet latency of all
//! threads (the g-APL), ignoring per-application balance.
//!
//! Because the g-APL denominator (total communication volume) is fixed,
//! minimizing g-APL is exactly minimizing
//! `Σ_j c_j·TC(π(j)) + m_j·TM(π(j))`, a single `N×N` linear assignment
//! problem — solved optimally by the Hungarian method. This makes our
//! Global baseline the *true* optimum of the traditional objective, which
//! is the strongest version of the comparison in the paper's Section II.D:
//! the imbalance it exhibits is inherent to the objective, not an artifact
//! of a weak solver.

use crate::algorithms::Mapper;
use crate::problem::{Mapping, ObmInstance};
use assignment::CostMatrix;
use noc_model::TileId;

/// Globally-optimal overall-latency mapper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Global;

impl Mapper for Global {
    fn name(&self) -> &'static str {
        "Global"
    }

    fn map(&self, inst: &ObmInstance, _seed: u64) -> Mapping {
        // The Hungarian input is exactly the instance's precomputed flat
        // cost matrix — read it instead of recomputing Eq. (13) N×N times.
        let tables = inst.eval_tables();
        let costs = CostMatrix::from_fn(inst.num_threads(), inst.num_tiles(), |j, k| {
            tables.cost(j, k)
        });
        let sol = costs.solve();
        Mapping::new(sol.row_to_col.iter().map(|&k| TileId(k)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::random::RandomMapper;
    use crate::eval::evaluate;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};

    fn paper_style_instance(seed: u64) -> ObmInstance {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let mut rng = SmallRng::seed_from_u64(seed);
        // Two apps with very different rates: app 1 light, app 2 heavy.
        let mut c = vec![];
        for _ in 0..8 {
            c.push(rng.gen_range(0.5..1.0));
        }
        for _ in 0..8 {
            c.push(rng.gen_range(5.0..10.0));
        }
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        ObmInstance::new(tiles, vec![0, 8, 16], c, m)
    }

    #[test]
    fn global_beats_random_on_g_apl() {
        let inst = paper_style_instance(1);
        let g = evaluate(&inst, &Global.map(&inst, 0));
        for seed in 0..50 {
            let r = evaluate(&inst, &RandomMapper.map(&inst, seed));
            assert!(g.g_apl <= r.g_apl + 1e-9, "random seed {seed} beat Global");
        }
    }

    #[test]
    fn global_exacerbates_imbalance() {
        // Section II.D's observation: optimizing g-APL places the heavy
        // app on the cheap tiles, inflating the light app's APL — its
        // dev-APL should exceed the random-average dev-APL.
        let inst = paper_style_instance(2);
        let g = evaluate(&inst, &Global.map(&inst, 0));
        let avg = crate::algorithms::RandomMapper::averages(&inst, 500, 7);
        assert!(
            g.dev_apl > avg.mean_dev_apl,
            "Global dev-APL {} not worse than random {}",
            g.dev_apl,
            avg.mean_dev_apl
        );
        // The light application (app 0) gets the worse APL.
        assert!(g.per_app[0] > g.per_app[1]);
    }

    #[test]
    fn global_is_deterministic() {
        let inst = paper_style_instance(3);
        assert_eq!(Global.map(&inst, 0), Global.map(&inst, 99));
    }

    #[test]
    fn heavy_threads_get_low_tc_tiles() {
        // With cache-only traffic, the heaviest thread must sit on a
        // minimum-TC tile in the Global optimum (exchange argument).
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let mut c = vec![1.0; 16];
        c[5] = 100.0; // one very heavy thread
        let inst = ObmInstance::new(tl, vec![0, 16], c, vec![0.0; 16]);
        let m = Global.map(&inst, 0);
        let tc_of_heavy = inst.tiles().tc(m.tile_of(5));
        let min_tc = inst
            .tiles()
            .tc_array()
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((tc_of_heavy - min_tc).abs() < 1e-9);
    }
}
