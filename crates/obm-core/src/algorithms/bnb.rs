//! Branch-and-bound exact solver for OBM (extension beyond the paper).
//!
//! Plain enumeration ([`super::BruteForce`]) dies at ~10 threads; this
//! solver prunes with an admissible lower bound and routinely proves
//! optimality on 4×4-mesh instances (16 threads), which is enough to
//! measure the sort-select-swap optimality gap empirically (the
//! `experiments optgap` study).
//!
//! * **Branching:** threads are assigned to tiles in order; heavier
//!   threads first (largest rates are the most constrained decisions).
//! * **Bounding:** for each application, relax away the *competition* for
//!   tiles: the application's unassigned threads are optimally placed on
//!   the free tiles by a Hungarian solve, ignoring the other applications'
//!   needs. Each application's relaxed APL is a valid lower bound on its
//!   final APL, so the max over applications bounds the objective. The
//!   incumbent comes from SSS, which is typically optimal or near-optimal,
//!   making the search mostly a proof.

use crate::algorithms::{Mapper, SortSelectSwap};
use crate::cancel::CancelToken;
use crate::eval::evaluate;
use crate::problem::{Mapping, ObmInstance};
use crate::sam::solve_sam;
use assignment::CostMatrix;
use noc_model::TileId;
use noc_telemetry::Probe;

/// Nodes between [`CancelToken`] polls (power of two: mask test). Node
/// expansion includes an `O(N)`–`O(u³)` bound computation, so 4096 nodes
/// is already tens of microseconds of work.
const CANCEL_POLL_MASK: u64 = 4096 - 1;

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct BnbResult {
    /// Best mapping found.
    pub mapping: Mapping,
    /// Its objective value (`max_i w_i·d_i`).
    pub objective: f64,
    /// Whether optimality was proven (search completed within budget).
    pub proven_optimal: bool,
    /// Search nodes expanded.
    pub nodes: u64,
    /// Whether the run was stopped by its [`CancelToken`] (as opposed to
    /// finishing or exhausting the node budget).
    pub cancelled: bool,
}

/// Branch-and-bound solver with a node budget.
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Abort the proof (keeping the incumbent) after this many nodes.
    pub node_budget: u64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            node_budget: 20_000_000,
        }
    }
}

struct Search<'a> {
    inst: &'a ObmInstance,
    /// Flat SoA tables: one indexed load per Eq. (13) cost probe in the
    /// bound and branch loops.
    tables: &'a crate::batch::EvalTables,
    /// Threads in branching order (heaviest first).
    order: Vec<usize>,
    /// Current tile of each thread (by thread id), usize::MAX = free.
    assigned: Vec<usize>,
    free_tiles: Vec<bool>,
    /// Per-app numerators of the fixed part.
    fixed_num: Vec<f64>,
    best: f64,
    best_mapping: Option<Vec<TileId>>,
    nodes: u64,
    budget: u64,
    exhausted: bool,
    token: &'a CancelToken,
    cancelled: bool,
    /// Depth up to which the (expensive, tight) Hungarian relaxation is
    /// added on top of the separable bounds.
    hungarian_depth: usize,
}

/// Minimal Σ aᵢ·bᵢ over injective pairings of the `a`s (descending) with
/// any |a| of the `b`s — by the rearrangement inequality: take the |a|
/// smallest `b`s and pair largest-a with smallest-b. `a_desc` must be
/// sorted descending, `b_asc` ascending.
fn opposite_sorted_sum(a_desc: &[f64], b_asc: &[f64]) -> f64 {
    debug_assert!(a_desc.len() <= b_asc.len());
    // a is descending and b ascending, so zipping directly pairs the
    // largest a with the smallest b — the minimizing arrangement.
    a_desc
        .iter()
        .zip(b_asc.iter().take(a_desc.len()))
        .map(|(x, y)| x * y)
        .sum()
}

impl Search<'_> {
    /// Admissible lower bound at the current node.
    ///
    /// Three admissible components, maximized:
    /// 1. per-app *separable* bound: the cache and memory cost terms are
    ///    each lower-bounded by the rearrangement inequality over the free
    ///    tiles' TC / TM values (independent relaxation of the joint
    ///    assignment);
    /// 2. a competition-aware *global* bound: `max_i w_i·d_i ≥
    ///    T / Σ_i vol_i/w_i` where `T` is a lower bound on the total
    ///    latency of all threads (fixed + separable over all unassigned);
    /// 3. near the root, the per-app Hungarian relaxation (tight but
    ///    `O(u³)`).
    fn lower_bound(&self, depth: usize) -> f64 {
        let inst = self.inst;
        let free: Vec<TileId> = (0..inst.num_tiles())
            .filter(|&k| self.free_tiles[k])
            .map(TileId)
            .collect();
        let mut tc_free: Vec<f64> = free.iter().map(|&k| inst.tiles().tc(k)).collect();
        let mut tm_free: Vec<f64> = free.iter().map(|&k| inst.tiles().tm(k)).collect();
        tc_free.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        tm_free.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

        let mut lb = f64::NEG_INFINITY;
        let mut total_fixed = 0.0;
        let mut total_relaxed = 0.0;
        let mut inv_weighted_vol = 0.0;
        for i in 0..inst.num_apps() {
            total_fixed += self.fixed_num[i];
            inv_weighted_vol += inst.app_volume(i) / inst.app_weight(i);
            let unassigned: Vec<usize> = inst
                .app_threads(i)
                .filter(|&j| self.assigned[j] == usize::MAX)
                .collect();
            let relaxed = if unassigned.is_empty() {
                0.0
            } else if depth <= self.hungarian_depth {
                let costs = CostMatrix::from_fn(unassigned.len(), free.len(), |r, c| {
                    self.tables.cost(unassigned[r], free[c].index())
                });
                costs.solve().cost
            } else {
                let mut c: Vec<f64> = unassigned.iter().map(|&j| inst.cache_rate(j)).collect();
                let mut m: Vec<f64> = unassigned.iter().map(|&j| inst.mem_rate(j)).collect();
                c.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                m.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
                opposite_sorted_sum(&c, &tc_free) + opposite_sorted_sum(&m, &tm_free)
            };
            total_relaxed += relaxed;
            let apl = (self.fixed_num[i] + relaxed) / inst.app_volume(i);
            lb = lb.max(inst.app_weight(i) * apl);
        }
        // Global competition-aware bound.
        lb.max((total_fixed + total_relaxed) / inv_weighted_vol)
    }

    fn recurse(&mut self, depth: usize) {
        if self.nodes >= self.budget {
            self.exhausted = true;
            return;
        }
        if self.nodes & CANCEL_POLL_MASK == 0 && self.token.is_cancelled() {
            self.cancelled = true;
            return;
        }
        self.nodes += 1;
        if depth == self.order.len() {
            let obj = (0..self.inst.num_apps())
                .map(|i| self.inst.app_weight(i) * self.fixed_num[i] / self.inst.app_volume(i))
                .fold(f64::NEG_INFINITY, f64::max);
            if obj < self.best - 1e-12 {
                self.best = obj;
                self.best_mapping = Some(self.assigned.iter().map(|&k| TileId(k)).collect());
            }
            return;
        }
        if self.lower_bound(depth) >= self.best - 1e-12 {
            return; // prune
        }
        let j = self.order[depth];
        let app = self.tables.app_of(j);
        // Symmetry breaking: free tiles with identical (TC, TM) are fully
        // interchangeable for every remaining thread, so branching only
        // needs one representative per equivalence class (a mesh has just
        // a handful of classes thanks to its 8-fold symmetry).
        let mut tiles: Vec<usize> = Vec::new();
        let mut seen: Vec<(u64, u64)> = Vec::new();
        for k in 0..self.inst.num_tiles() {
            if !self.free_tiles[k] {
                continue;
            }
            let key = (
                self.inst.tiles().tc(TileId(k)).to_bits(),
                self.inst.tiles().tm(TileId(k)).to_bits(),
            );
            if !seen.contains(&key) {
                seen.push(key);
                tiles.push(k);
            }
        }
        // Try representatives in increasing placement cost (finds good
        // incumbents early, tightening pruning).
        let cost_row = self.tables.cost_row(j);
        tiles.sort_by(|&a, &b| cost_row[a].partial_cmp(&cost_row[b]).expect("finite costs"));
        for k in tiles {
            let cost = cost_row[k];
            self.assigned[j] = k;
            self.free_tiles[k] = false;
            self.fixed_num[app] += cost;
            self.recurse(depth + 1);
            self.fixed_num[app] -= cost;
            self.free_tiles[k] = true;
            self.assigned[j] = usize::MAX;
            if self.exhausted || self.cancelled {
                return;
            }
        }
    }
}

impl BranchAndBound {
    /// Solve the instance exactly (or best-effort within the node budget),
    /// under cooperative cancellation and an optional external upper bound.
    ///
    /// `upper_bound` seeds the pruning incumbent when it beats the internal
    /// SSS incumbent — the portfolio engine passes its shared best-so-far
    /// max-APL here so the proof prunes against work other workers already
    /// did. A cancelled run keeps whatever incumbent it had (`cancelled` is
    /// set, `proven_optimal` is false).
    pub fn solve_budgeted(
        &self,
        inst: &ObmInstance,
        token: &CancelToken,
        upper_bound: Option<f64>,
    ) -> BnbResult {
        // Incumbent: SSS, then a per-app SAM re-optimization is already
        // inside SSS; its value is usually the optimum.
        let incumbent = SortSelectSwap::default().map(inst, 0);
        let incumbent_val = evaluate(inst, &incumbent).max_apl;
        let prune_at = match upper_bound {
            Some(ub) if ub < incumbent_val => ub,
            _ => incumbent_val,
        };

        let mut order: Vec<usize> = (0..inst.num_threads()).collect();
        order.sort_by(|&a, &b| {
            let ra = inst.cache_rate(a) + inst.mem_rate(a);
            let rb = inst.cache_rate(b) + inst.mem_rate(b);
            rb.partial_cmp(&ra).expect("finite rates")
        });
        let mut search = Search {
            inst,
            tables: inst.eval_tables(),
            order,
            assigned: vec![usize::MAX; inst.num_threads()],
            free_tiles: vec![true; inst.num_tiles()],
            fixed_num: vec![0.0; inst.num_apps()],
            best: prune_at + 1e-12,
            best_mapping: None,
            nodes: 0,
            budget: self.node_budget,
            exhausted: false,
            token,
            cancelled: false,
            hungarian_depth: 4,
        };
        search.recurse(0);
        let (mapping, objective) = match search.best_mapping {
            Some(tiles) => {
                let m = Mapping::new(tiles);
                let v = evaluate(inst, &m).max_apl;
                (m, v)
            }
            None => (incumbent, incumbent_val),
        };
        BnbResult {
            mapping,
            objective,
            proven_optimal: !search.exhausted && !search.cancelled,
            nodes: search.nodes,
            cancelled: search.cancelled,
        }
    }
}

impl Mapper for BranchAndBound {
    fn name(&self) -> &'static str {
        "BnB"
    }

    fn map(&self, inst: &ObmInstance, _seed: u64) -> Mapping {
        self.solve_budgeted(inst, &CancelToken::never(), None)
            .mapping
    }

    fn map_cancellable(
        &self,
        inst: &ObmInstance,
        _seed: u64,
        token: &CancelToken,
        _probe: &mut dyn Probe,
    ) -> Option<Mapping> {
        let r = self.solve_budgeted(inst, token, None);
        if r.cancelled {
            None
        } else {
            Some(r.mapping)
        }
    }
}

/// Final SAM polish used by the incumbent path (re-exported for tests).
#[allow(dead_code)]
fn sam_polish(inst: &ObmInstance, mapping: &mut Mapping) {
    for i in 0..inst.num_apps() {
        let threads: Vec<usize> = inst.app_threads(i).collect();
        let tiles: Vec<TileId> = threads.iter().map(|&j| mapping.tile_of(j)).collect();
        let sam = solve_sam(inst, &threads, &tiles);
        for (t, &tile) in threads.iter().zip(&sam.assignment) {
            mapping.set_tile(*t, tile);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BruteForce;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn small_instance(seed: u64, rows: usize, cols: usize, apps: usize) -> ObmInstance {
        let mesh = Mesh::new(rows, cols);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let n = rows * cols;
        let mut rng = SmallRng::seed_from_u64(seed);
        let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..5.0)).collect();
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        let mut bounds = vec![0];
        for a in 1..=apps {
            bounds.push(a * n / apps);
        }
        *bounds.last_mut().unwrap() = n;
        ObmInstance::new(tl, bounds, c, m)
    }

    fn brute_optimum(inst: &ObmInstance) -> f64 {
        evaluate(inst, &BruteForce.map(inst, 0)).max_apl
    }

    fn solve(bnb: &BranchAndBound, inst: &ObmInstance) -> BnbResult {
        bnb.solve_budgeted(inst, &CancelToken::never(), None)
    }

    #[test]
    fn matches_brute_force_on_tiny_instances() {
        for seed in 0..8 {
            let inst = small_instance(seed, 2, 3, 2);
            let bf = brute_optimum(&inst);
            let bnb = solve(&BranchAndBound::default(), &inst);
            assert!(bnb.proven_optimal, "seed {seed} exhausted budget");
            assert!(
                (bnb.objective - bf).abs() < 1e-9,
                "seed {seed}: BnB {} vs brute {}",
                bnb.objective,
                bf
            );
        }
    }

    #[test]
    fn proves_optimality_on_4x4() {
        // 16 threads, 4 apps — far beyond brute force (16! states).
        let inst = small_instance(3, 4, 4, 4);
        let bnb = solve(&BranchAndBound::default(), &inst);
        assert!(bnb.proven_optimal, "expanded {} nodes", bnb.nodes);
        // SSS must not beat a proven optimum.
        let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0)).max_apl;
        assert!(sss >= bnb.objective - 1e-9);
    }

    #[test]
    fn budget_exhaustion_reports_incumbent() {
        let inst = small_instance(1, 4, 4, 4);
        let tiny = BranchAndBound { node_budget: 10 };
        let r = solve(&tiny, &inst);
        assert!(!r.proven_optimal);
        // The incumbent is the SSS mapping — still valid and evaluated.
        assert!(r.mapping.is_valid_for(&inst));
        assert!(r.objective.is_finite());
        assert!(!r.cancelled);
    }

    #[test]
    fn lower_bound_is_admissible_at_root() {
        // At the root (nothing fixed), the bound must not exceed the true
        // optimum.
        for seed in 0..5 {
            let inst = small_instance(seed, 2, 3, 2);
            let bf = brute_optimum(&inst);
            let mut search = Search {
                inst: &inst,
                tables: inst.eval_tables(),
                order: (0..inst.num_threads()).collect(),
                assigned: vec![usize::MAX; inst.num_threads()],
                free_tiles: vec![true; inst.num_tiles()],
                fixed_num: vec![0.0; inst.num_apps()],
                best: f64::INFINITY,
                best_mapping: None,
                nodes: 0,
                budget: 1,
                exhausted: false,
                token: &CancelToken::never(),
                cancelled: false,
                hungarian_depth: 4,
            };
            let lb = search.lower_bound(0);
            search.nodes += 1; // silence unused warnings in some configs
            assert!(lb <= bf + 1e-9, "seed {seed}: LB {lb} > optimum {bf}");
        }
    }

    #[test]
    fn no_heuristic_beats_a_proven_optimum() {
        // Regression for an inadmissible-bound bug: a long SA run must
        // never undercut a proven BnB optimum.
        use crate::algorithms::SimulatedAnnealing;
        for seed in [0u64, 5, 8] {
            let inst = small_instance(seed, 4, 4, 4);
            let bnb = solve(&BranchAndBound::default(), &inst);
            if !bnb.proven_optimal {
                continue;
            }
            let sa = evaluate(
                &inst,
                &SimulatedAnnealing::with_iterations(50_000).map(&inst, 1),
            )
            .max_apl;
            assert!(
                sa >= bnb.objective - 1e-9,
                "seed {seed}: SA {sa} beat 'proven' optimum {}",
                bnb.objective
            );
        }
    }

    #[test]
    fn weighted_instances_supported() {
        let inst = small_instance(2, 2, 3, 2).with_app_weights(vec![2.0, 1.0]);
        let bnb = solve(&BranchAndBound::default(), &inst);
        assert!(bnb.proven_optimal);
        let bf = brute_optimum(&inst);
        assert!((bnb.objective - bf).abs() < 1e-9);
    }
}
