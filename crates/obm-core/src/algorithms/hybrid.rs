//! Hybrid mapper (extension): seed simulated annealing with the
//! sort-select-swap solution instead of a random mapping.
//!
//! Figure 12's trade-off suggests the natural combination — spend the
//! deterministic `O(N³)` pass first, then let a short annealing run explore
//! the neighbourhood SSS cannot reach (its window permutations only act on
//! the TC-sorted list). With an SSS-quality incumbent the annealer can run
//! cold (low initial temperature), making the hybrid strictly a refinement
//! in practice.

use crate::algorithms::{Mapper, SortSelectSwap};
use crate::cancel::CancelToken;
use crate::eval::{evaluate, IncrementalEvaluator};
use crate::problem::{Mapping, ObmInstance};
use noc_model::TileId;
use noc_telemetry::{NoopSink, Probe};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Annealing moves between [`CancelToken`] polls (power of two: mask
/// test); same cadence as `SimulatedAnnealing`.
const CANCEL_POLL_MASK: usize = 1024 - 1;

/// SSS followed by a cold annealing refinement.
#[derive(Debug, Clone, Copy)]
pub struct HybridSssSa {
    /// The SSS configuration used for the seed.
    pub sss: SortSelectSwap,
    /// Annealing moves after seeding.
    pub sa_iterations: usize,
    /// Initial temperature as a fraction of the seed objective (cold:
    /// small values only accept near-lateral moves).
    pub initial_temp_fraction: f64,
}

impl Default for HybridSssSa {
    fn default() -> Self {
        HybridSssSa {
            sss: SortSelectSwap::default(),
            sa_iterations: 20_000,
            initial_temp_fraction: 0.002,
        }
    }
}

impl Mapper for HybridSssSa {
    fn name(&self) -> &'static str {
        "SSS+SA"
    }

    fn map(&self, inst: &ObmInstance, seed: u64) -> Mapping {
        self.map_cancellable(inst, seed, &CancelToken::never(), &mut NoopSink)
            .expect("a never-firing token cannot cancel the hybrid")
    }

    fn map_probed(&self, inst: &ObmInstance, seed: u64, probe: &mut dyn Probe) -> Mapping {
        self.map_cancellable(inst, seed, &CancelToken::never(), probe)
            .expect("a never-firing token cannot cancel the hybrid")
    }

    fn map_cancellable(
        &self,
        inst: &ObmInstance,
        seed: u64,
        token: &CancelToken,
        probe: &mut dyn Probe,
    ) -> Option<Mapping> {
        // The SSS seed pass polls between its own passes; the refinement
        // loop below polls every CANCEL_POLL_MASK+1 moves.
        let init = self.sss.map_cancellable(inst, seed, token, probe)?;
        let init_val = evaluate(inst, &init).max_apl;
        let mut ev = IncrementalEvaluator::new(inst, init.clone());
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5555_aaaa);
        let mut cur = init_val;
        let mut best = init_val;
        let mut best_mapping = init;
        let t0 = (init_val * self.initial_temp_fraction).max(1e-9);
        let alpha = (1e-3f64).powf(1.0 / self.sa_iterations.max(1) as f64);
        let mut temp = t0;
        let n = inst.num_tiles();
        for it in 0..self.sa_iterations {
            if it & CANCEL_POLL_MASK == 0 && token.is_cancelled() {
                return None;
            }
            let a = TileId(rng.gen_range(0..n));
            let mut b = TileId(rng.gen_range(0..n));
            while b == a {
                b = TileId(rng.gen_range(0..n));
            }
            ev.swap_tiles(a, b);
            let cand = ev.max_apl();
            let delta = cand - cur;
            if delta <= 0.0 || rng.gen::<f64>() < (-delta / temp).exp() {
                cur = cand;
                if cur < best {
                    best = cur;
                    best_mapping = ev.mapping().clone();
                }
            } else {
                ev.swap_tiles(a, b);
            }
            temp *= alpha;
        }
        Some(best_mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
    use rand::rngs::SmallRng as TestRng;

    fn instance(seed: u64) -> ObmInstance {
        let mesh = Mesh::square(8);
        let mcs = MemoryControllers::corners(&mesh);
        let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
        let mut rng = TestRng::seed_from_u64(seed);
        let mut c = Vec::with_capacity(64);
        for app in 0..4 {
            let scale = [0.5, 1.5, 4.0, 9.0][app];
            for _ in 0..16 {
                c.push(scale * rng.gen_range(0.2..2.0));
            }
        }
        let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
        ObmInstance::new(tiles, vec![0, 16, 32, 48, 64], c, m)
    }

    #[test]
    fn hybrid_never_worse_than_sss() {
        for seed in 0..3 {
            let inst = instance(seed);
            let sss = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0)).max_apl;
            let hybrid = evaluate(&inst, &HybridSssSa::default().map(&inst, 0)).max_apl;
            assert!(
                hybrid <= sss + 1e-9,
                "seed {seed}: hybrid {hybrid} vs SSS {sss}"
            );
        }
    }

    #[test]
    fn hybrid_is_seeded_deterministic() {
        let inst = instance(5);
        let h = HybridSssSa::default();
        assert_eq!(h.map(&inst, 3), h.map(&inst, 3));
    }

    #[test]
    fn cancelled_token_yields_none_quiet_token_matches_map() {
        use noc_telemetry::NoopSink;
        let inst = instance(2);
        let h = HybridSssSa {
            sa_iterations: 2_000,
            ..Default::default()
        };
        let fired = CancelToken::new();
        fired.cancel();
        assert!(h.map_cancellable(&inst, 3, &fired, &mut NoopSink).is_none());
        assert_eq!(
            h.map_cancellable(&inst, 3, &CancelToken::never(), &mut NoopSink),
            Some(h.map(&inst, 3))
        );
    }

    #[test]
    fn valid_with_spare_tiles() {
        let mesh = Mesh::square(4);
        let mcs = MemoryControllers::corners(&mesh);
        let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::fig5_example());
        let inst = ObmInstance::new(tl, vec![0, 5, 10], vec![1.0; 10], vec![0.1; 10]);
        let h = HybridSssSa {
            sa_iterations: 2_000,
            ..Default::default()
        };
        assert!(h.map(&inst, 0).is_valid_for(&inst));
    }
}
