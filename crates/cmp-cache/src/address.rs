//! Synthetic per-thread memory-address streams.
//!
//! Three archetypes cover the locality regimes that differentiate the
//! PARSEC codes' miss rates: streaming (sequential), hot-working-set
//! (Zipf-weighted reuse) and scattered (uniform over a large footprint).
//! A thread mixes a private stream with accesses to its application's
//! shared region — the latter is what exercises the coherence protocol.

use rand::rngs::SmallRng;
use rand::Rng;

/// A generator of line-aligned physical addresses.
#[derive(Debug, Clone)]
pub enum AddressPattern {
    /// Sequential streaming through a large buffer.
    Stream {
        base: u64,
        /// Footprint in lines (wraps around).
        lines: u64,
        /// Stride in lines per access.
        stride: u64,
        /// Internal cursor.
        cursor: u64,
    },
    /// Zipf-weighted reuse over a working set: rank `r` (0-based) is
    /// drawn with probability ∝ `1/(r+1)^s`.
    WorkingSet {
        base: u64,
        lines: u64,
        /// Zipf skew (0 = uniform; ~1 = typical hot-set reuse).
        skew: f64,
    },
    /// Uniform over a footprint far larger than any cache (thrashing).
    Scatter { base: u64, lines: u64 },
}

const LINE: u64 = 64;

impl AddressPattern {
    /// Streaming pattern helper.
    pub fn stream(base: u64, lines: u64) -> Self {
        AddressPattern::Stream {
            base,
            lines: lines.max(1),
            stride: 1,
            cursor: 0,
        }
    }

    /// Working-set pattern helper.
    pub fn working_set(base: u64, lines: u64, skew: f64) -> Self {
        assert!(skew >= 0.0);
        AddressPattern::WorkingSet {
            base,
            lines: lines.max(1),
            skew,
        }
    }

    /// Scatter pattern helper.
    pub fn scatter(base: u64, lines: u64) -> Self {
        AddressPattern::Scatter {
            base,
            lines: lines.max(1),
        }
    }

    /// Next line-aligned address.
    pub fn next(&mut self, rng: &mut SmallRng) -> u64 {
        match self {
            AddressPattern::Stream {
                base,
                lines,
                stride,
                cursor,
            } => {
                let addr = *base + (*cursor % *lines) * LINE;
                *cursor = cursor.wrapping_add(*stride);
                addr
            }
            AddressPattern::WorkingSet { base, lines, skew } => {
                let rank = zipf_rank(*lines, *skew, rng);
                *base + rank * LINE
            }
            AddressPattern::Scatter { base, lines } => *base + rng.gen_range(0..*lines) * LINE,
        }
    }
}

/// Draw a Zipf-distributed rank in `0..n` with skew `s` by inverse-CDF
/// over the (approximated) harmonic weights. Uses the standard
/// approximation via rejection-free inversion on the integral of
/// `x^(-s)`, accurate enough for traffic shaping.
fn zipf_rank(n: u64, s: f64, rng: &mut SmallRng) -> u64 {
    if s < 1e-9 || n <= 1 {
        return rng.gen_range(0..n.max(1));
    }
    // Inverse-transform on the continuous density x^-s over [1, n+1).
    let u: f64 = rng.gen();
    let nf = (n + 1) as f64;
    let x = if (s - 1.0).abs() < 1e-9 {
        nf.powf(u)
    } else {
        let a = 1.0 - s;
        ((nf.powf(a) - 1.0) * u + 1.0).powf(1.0 / a)
    };
    (x.floor() as u64 - 1).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stream_is_sequential_and_wraps() {
        let mut p = AddressPattern::stream(0x1000, 3);
        let mut rng = SmallRng::seed_from_u64(0);
        let a: Vec<u64> = (0..5).map(|_| p.next(&mut rng)).collect();
        assert_eq!(a, vec![0x1000, 0x1040, 0x1080, 0x1000, 0x1040]);
    }

    #[test]
    fn scatter_stays_in_footprint_and_line_aligned() {
        let mut p = AddressPattern::scatter(0x10_0000, 1000);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = p.next(&mut rng);
            assert!((0x10_0000..0x10_0000 + 1000 * 64).contains(&a));
            assert_eq!(a % 64, 0);
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 1000u64;
        let count_top_decile = |skew: f64, rng: &mut SmallRng| -> usize {
            let mut p = AddressPattern::working_set(0, n, skew);
            (0..10_000).filter(|_| p.next(rng) < n / 10 * 64).count()
        };
        let uniform = count_top_decile(0.0, &mut rng);
        let skewed = count_top_decile(1.2, &mut rng);
        assert!(
            skewed > 2 * uniform,
            "skewed {skewed} not concentrated vs uniform {uniform}"
        );
    }

    #[test]
    fn zipf_rank_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for s in [0.0, 0.5, 1.0, 1.5] {
            for _ in 0..2000 {
                let r = zipf_rank(100, s, &mut rng);
                assert!(r < 100);
            }
        }
    }
}
