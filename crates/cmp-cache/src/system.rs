//! The CMP memory system: per-core private L1s, a distributed shared L2
//! (address-interleaved banks) with a MOESI-lite directory, driven by
//! synthetic per-thread access streams. Produces the per-thread
//! cache/memory request-rate traces that the OBM formulation consumes —
//! derived from first principles instead of postulated.
//!
//! Traffic accounting follows the paper's §II.B taxonomy:
//!
//! * every L1 miss sends a request packet to the home L2 bank — **cache
//!   traffic** (`c_j`);
//! * directory forwards and invalidations are checking/forwarding packets
//!   between the bank and other L1s — also cache traffic;
//! * every L2 bank miss sends a request to the nearest memory
//!   controller — **memory traffic** (`m_j`).

use crate::address::AddressPattern;
use crate::cache::{AccessResult, Cache, CacheConfig, CacheStats};
use crate::coherence::Directory;
use noc_model::hashing::BankHash;
use noc_model::Mesh;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use workload::{Application, ThreadLoad, Workload};

const LINE_BYTES: u64 = 64;

/// One thread's behavioural description.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Memory accesses issued per kilocycle (before cache filtering).
    pub accesses_per_kilocycle: f64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Consecutive word-level touches per generated line (spatial
    /// locality; only the first can miss). 8 ≈ word-granular streaming
    /// over 64-byte lines.
    pub line_reuse: u32,
    /// Private address stream.
    pub private: AddressPattern,
    /// Probability an access targets the application's shared region.
    pub shared_fraction: f64,
}

/// One application: threads plus a shared data region.
#[derive(Debug, Clone)]
pub struct CacheAppSpec {
    pub name: String,
    pub threads: Vec<ThreadSpec>,
    /// Shared-region pattern (cloned per thread; same base region).
    pub shared: AddressPattern,
}

/// System-level configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Mesh (defines the number of L2 banks = tiles).
    pub mesh: Mesh,
    /// Private L1 geometry (Table 2: 32 KB, 2-way).
    pub l1: CacheConfig,
    /// Per-bank L2 geometry (Table 2: 256 KB, 16-way).
    pub l2_bank: CacheConfig,
    /// Trace epochs to produce.
    pub epochs: usize,
    /// Cycles per epoch.
    pub epoch_cycles: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SystemConfig {
    /// Table 2 defaults on the given mesh.
    pub fn paper_defaults(mesh: Mesh) -> Self {
        SystemConfig {
            mesh,
            l1: CacheConfig::paper_l1(),
            l2_bank: CacheConfig::paper_l2_bank(),
            epochs: 200,
            epoch_cycles: 1_000,
            seed: 7,
        }
    }
}

/// Output traces plus hierarchy statistics.
#[derive(Debug, Clone)]
pub struct CacheTraces {
    pub epoch_cycles: u64,
    /// Per thread: (cache requests, memory requests) per kilocycle, per
    /// epoch.
    pub cache: Vec<Vec<f64>>,
    pub mem: Vec<Vec<f64>>,
    pub app_sizes: Vec<usize>,
    pub app_names: Vec<String>,
    /// Aggregate L1 statistics over all cores.
    pub l1_stats: CacheStats,
    /// Aggregate L2 statistics over all banks.
    pub l2_stats: CacheStats,
    /// Coherence packets observed (forwards + invalidations).
    pub coherence_packets: u64,
}

impl CacheTraces {
    /// Mean cache-request rate per thread (requests/kilocycle).
    pub fn mean_cache_rate(&self, thread: usize) -> f64 {
        mean(&self.cache[thread])
    }

    /// Mean memory-request rate per thread.
    pub fn mean_mem_rate(&self, thread: usize) -> f64 {
        mean(&self.mem[thread])
    }

    /// Collapse to a [`Workload`] for the mapping layer.
    pub fn to_workload(&self) -> Workload {
        let mut apps = Vec::with_capacity(self.app_sizes.len());
        let mut idx = 0;
        for (size, name) in self.app_sizes.iter().zip(&self.app_names) {
            let threads = (idx..idx + size)
                .map(|j| ThreadLoad {
                    cache_rate: self.mean_cache_rate(j),
                    mem_rate: self.mean_mem_rate(j),
                })
                .collect();
            idx += size;
            apps.push(Application {
                name: name.clone(),
                threads,
            });
        }
        Workload::new(apps)
    }

    /// Ratio of total cache traffic to total memory traffic (the paper
    /// reports 6.78 on average across PARSEC mixes).
    pub fn cache_to_mem_ratio(&self) -> f64 {
        let c: f64 = self.cache.iter().flatten().sum();
        let m: f64 = self.mem.iter().flatten().sum();
        if m == 0.0 {
            f64::INFINITY
        } else {
            c / m
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The CMP memory-system model.
pub struct CmpSystem {
    cfg: SystemConfig,
    apps: Vec<CacheAppSpec>,
    l1s: Vec<Cache>,
    banks: Vec<Cache>,
    directory: Directory,
    hash: BankHash,
    rng: SmallRng,
}

impl CmpSystem {
    /// Build the system.
    ///
    /// # Panics
    /// Panics if the total thread count exceeds the tile count or any
    /// spec parameter is out of range.
    pub fn new(cfg: SystemConfig, apps: Vec<CacheAppSpec>) -> Self {
        let threads: usize = apps.iter().map(|a| a.threads.len()).sum();
        assert!(threads > 0 && threads <= cfg.mesh.num_tiles());
        assert!(threads <= 64, "directory sharer mask supports 64 cores");
        for a in &apps {
            for t in &a.threads {
                assert!(t.accesses_per_kilocycle >= 0.0);
                assert!((0.0..=1.0).contains(&t.write_fraction));
                assert!((0.0..=1.0).contains(&t.shared_fraction));
                assert!(t.line_reuse >= 1);
            }
        }
        let hash = BankHash::new(&cfg.mesh, LINE_BYTES as u32);
        CmpSystem {
            l1s: (0..threads).map(|_| Cache::new(cfg.l1)).collect(),
            banks: (0..cfg.mesh.num_tiles())
                .map(|_| Cache::new(cfg.l2_bank))
                .collect(),
            directory: Directory::new(),
            hash,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            apps,
        }
    }

    /// Run the configured number of epochs, producing rate traces.
    pub fn run(mut self) -> CacheTraces {
        let threads: usize = self.apps.iter().map(|a| a.threads.len()).sum();
        let mut cache_traces = vec![Vec::with_capacity(self.cfg.epochs); threads];
        let mut mem_traces = vec![Vec::with_capacity(self.cfg.epochs); threads];
        // Clone the mutable per-thread pattern state out of the specs.
        let mut privates: Vec<AddressPattern> = Vec::with_capacity(threads);
        let mut shareds: Vec<AddressPattern> = Vec::with_capacity(threads);
        let mut specs: Vec<(f64, f64, u32, f64)> = Vec::with_capacity(threads);
        for app in &self.apps {
            for t in &app.threads {
                privates.push(t.private.clone());
                shareds.push(app.shared.clone());
                specs.push((
                    t.accesses_per_kilocycle,
                    t.write_fraction,
                    t.line_reuse,
                    t.shared_fraction,
                ));
            }
        }
        // Fractional access accumulators for exact long-run rates.
        let mut carry = vec![0.0f64; threads];
        let mut coherence_packets = 0u64;
        for _epoch in 0..self.cfg.epochs {
            let mut epoch_cache = vec![0u64; threads];
            let mut epoch_mem = vec![0u64; threads];
            for t in 0..threads {
                let (rate, wfrac, reuse, sfrac) = specs[t];
                let want = rate * self.cfg.epoch_cycles as f64 / 1000.0 + carry[t];
                let n = want.floor() as u64;
                carry[t] = want - n as f64;
                // `n` word-level accesses → `n / reuse` distinct lines.
                let mut issued = 0u64;
                while issued < n {
                    let addr = if self.rng.gen_bool(sfrac) {
                        shareds[t].next(&mut self.rng)
                    } else {
                        privates[t].next(&mut self.rng)
                    };
                    let burst = reuse.min((n - issued).max(1) as u32);
                    issued += burst as u64;
                    let is_write = self.rng.gen_bool(wfrac);
                    let (c, m, coh) = self.access_line(t as u16, addr, is_write);
                    // The remaining word touches of the line hit in L1 by
                    // construction; record them so hit rates are
                    // word-granular like hardware counters.
                    self.l1s[t].record_free_hits(burst as u64 - 1);
                    epoch_cache[t] += c;
                    epoch_mem[t] += m;
                    coherence_packets += coh;
                }
            }
            let k = self.cfg.epoch_cycles as f64 / 1000.0;
            for t in 0..threads {
                cache_traces[t].push(epoch_cache[t] as f64 / k);
                mem_traces[t].push(epoch_mem[t] as f64 / k);
            }
        }
        let mut l1_stats = CacheStats::default();
        for c in &self.l1s {
            let s = c.stats();
            l1_stats.hits += s.hits;
            l1_stats.misses += s.misses;
            l1_stats.evictions += s.evictions;
            l1_stats.invalidations += s.invalidations;
        }
        let mut l2_stats = CacheStats::default();
        for b in &self.banks {
            let s = b.stats();
            l2_stats.hits += s.hits;
            l2_stats.misses += s.misses;
            l2_stats.evictions += s.evictions;
            l2_stats.invalidations += s.invalidations;
        }
        CacheTraces {
            epoch_cycles: self.cfg.epoch_cycles,
            cache: cache_traces,
            mem: mem_traces,
            app_sizes: self.apps.iter().map(|a| a.threads.len()).collect(),
            app_names: self.apps.iter().map(|a| a.name.clone()).collect(),
            l1_stats,
            l2_stats,
            coherence_packets,
        }
    }

    /// One line-granular access by `core`: returns (cache packets, memory
    /// packets, coherence packets) generated.
    fn access_line(&mut self, core: u16, addr: u64, is_write: bool) -> (u64, u64, u64) {
        let mut cache_pkts = 0u64;
        let mut mem_pkts = 0u64;
        let mut coh_pkts = 0u64;
        let line = addr / LINE_BYTES;
        let l1_hit = matches!(self.l1s[core as usize].access(addr), AccessResult::Hit);
        if l1_hit {
            if is_write {
                // Write hit on a line we don't own → upgrade through the
                // directory (one request packet + invalidations).
                let owned = self
                    .directory
                    .entry(line)
                    .map(|e| e.owner == Some(core))
                    .unwrap_or(false);
                if !owned {
                    cache_pkts += 1;
                    let ev = self.directory.write(core, line);
                    coh_pkts += ev.invalidations as u64;
                    self.apply_invalidations();
                }
            }
            return (cache_pkts, mem_pkts, coh_pkts);
        }
        // L1 miss: request to the home bank. The bank's tag array indexes
        // on the *bank-local* line number (global line ÷ bank count) —
        // indexing on the raw address would waste the sets whose index
        // bits overlap the bank-selection bits.
        cache_pkts += 1;
        let nb = self.banks.len() as u64;
        let bank = self.hash.bank_of(addr).index();
        let local_addr = (line / nb) * LINE_BYTES;
        match self.banks[bank].access(local_addr) {
            AccessResult::Hit => {
                let ev = if is_write {
                    self.directory.write(core, line)
                } else {
                    self.directory.read(core, line)
                };
                coh_pkts += (ev.forwards + ev.invalidations) as u64;
            }
            AccessResult::Miss { victim } => {
                // Off-chip fetch.
                mem_pkts += 1;
                if let Some(vaddr) = victim {
                    // Reconstruct the global line of the bank-local victim.
                    let victim_line = (vaddr / LINE_BYTES) * nb + bank as u64;
                    coh_pkts += self.directory.evict(victim_line) as u64;
                }
                let ev = if is_write {
                    self.directory.write(core, line)
                } else {
                    self.directory.read(core, line)
                };
                coh_pkts += (ev.forwards + ev.invalidations) as u64;
            }
        }
        self.apply_invalidations();
        (cache_pkts, mem_pkts, coh_pkts)
    }

    fn apply_invalidations(&mut self) {
        for (core, line) in self.directory.take_invalidations() {
            self.l1s[core as usize].invalidate(line * LINE_BYTES);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_thread_system(pattern: AddressPattern, shared_fraction: f64) -> CmpSystem {
        let mesh = Mesh::square(4);
        let cfg = SystemConfig {
            epochs: 300,
            ..SystemConfig::paper_defaults(mesh)
        };
        let app = CacheAppSpec {
            name: "solo".into(),
            threads: vec![ThreadSpec {
                accesses_per_kilocycle: 2_000.0,
                write_fraction: 0.2,
                line_reuse: 8,
                private: pattern,
                shared_fraction,
            }],
            shared: AddressPattern::working_set(0x8000_0000, 64, 0.8),
        };
        CmpSystem::new(cfg, vec![app])
    }

    #[test]
    fn small_working_set_mostly_hits() {
        // 128 lines = 8 KB ≪ 32 KB L1: after warm-up almost everything
        // hits, so cache-request rate ≪ access rate and memory rate ≈ 0.
        let sys = one_thread_system(AddressPattern::working_set(0x1000_0000, 128, 0.0), 0.0);
        let tr = sys.run();
        assert!(tr.l1_stats.hit_rate() > 0.95, "{}", tr.l1_stats.hit_rate());
        assert!(tr.mean_mem_rate(0) < 0.5, "{}", tr.mean_mem_rate(0));
    }

    #[test]
    fn giant_scatter_misses_everywhere() {
        // 4M lines = 256 MB ≫ L1+L2: every distinct line misses both
        // levels, so memory rate tracks the line rate (≈ access/8) and the
        // cache:mem ratio approaches 1.
        let sys = one_thread_system(AddressPattern::scatter(0x2000_0000, 1 << 22), 0.0);
        let tr = sys.run();
        assert!(tr.l1_stats.hit_rate() < 0.90); // only intra-line reuse hits
        let ratio = tr.cache_to_mem_ratio();
        assert!(
            (0.9..1.3).contains(&ratio),
            "thrash ratio should be ≈1, got {ratio}"
        );
    }

    #[test]
    fn mid_working_set_gives_paper_like_ratio() {
        // Working set that overflows L1 but fits in the distributed L2:
        // plenty of L1 misses (cache traffic) but few L2 misses (memory
        // traffic) — the PARSEC-like regime the paper reports (≈6.78:1).
        let sys = one_thread_system(AddressPattern::working_set(0x3000_0000, 12_000, 0.95), 0.0);
        let tr = sys.run();
        let ratio = tr.cache_to_mem_ratio();
        assert!(
            (1.5..100.0).contains(&ratio),
            "expected an intermediate ratio, got {ratio}"
        );
        assert!(tr.mean_cache_rate(0) > tr.mean_mem_rate(0));
        // and clearly distinct from the thrashing regime (ratio ≈ 1)
        assert!(
            ratio > 1.4,
            "ratio {ratio} indistinguishable from thrashing"
        );
    }

    #[test]
    fn sharing_generates_coherence_traffic() {
        let mesh = Mesh::square(4);
        let cfg = SystemConfig {
            epochs: 40,
            ..SystemConfig::paper_defaults(mesh)
        };
        let mk_threads = |shared: f64| -> Vec<ThreadSpec> {
            (0..4)
                .map(|i| ThreadSpec {
                    accesses_per_kilocycle: 100.0,
                    write_fraction: 0.3,
                    line_reuse: 4,
                    private: AddressPattern::working_set(0x1000_0000 + i * 0x10_0000, 256, 0.5),
                    shared_fraction: shared,
                })
                .collect()
        };
        let run = |shared: f64| -> u64 {
            let app = CacheAppSpec {
                name: "sharers".into(),
                threads: mk_threads(shared),
                shared: AddressPattern::working_set(0x9000_0000, 64, 0.8),
            };
            CmpSystem::new(cfg.clone(), vec![app])
                .run()
                .coherence_packets
        };
        let without = run(0.0);
        let with = run(0.5);
        assert!(
            with > 10 * without.max(1),
            "sharing produced {with} coherence packets vs {without} without"
        );
    }

    #[test]
    fn traces_convert_to_workload() {
        let mesh = Mesh::square(4);
        let cfg = SystemConfig {
            epochs: 30,
            ..SystemConfig::paper_defaults(mesh)
        };
        let mk_app = |name: &str, base: u64, rate: f64| CacheAppSpec {
            name: name.into(),
            threads: (0..4)
                .map(|i| ThreadSpec {
                    accesses_per_kilocycle: rate,
                    write_fraction: 0.2,
                    line_reuse: 8,
                    private: AddressPattern::working_set(base + i * 0x100_0000, 20_000, 0.6),
                    shared_fraction: 0.1,
                })
                .collect(),
            shared: AddressPattern::working_set(base + 0xF00_0000, 128, 0.8),
        };
        let sys = CmpSystem::new(
            cfg,
            vec![
                mk_app("light", 0x1000_0000, 60.0),
                mk_app("heavy", 0x8000_0000, 300.0),
            ],
        );
        let tr = sys.run();
        let w = tr.to_workload();
        assert_eq!(w.num_apps(), 2);
        assert_eq!(w.num_threads(), 8);
        // heavier access rate ⇒ heavier NoC traffic, preserved through the
        // hierarchy
        assert!(w.apps[1].total_rate() > w.apps[0].total_rate());
        assert_eq!(w.apps[1].name, "heavy");
    }

    #[test]
    fn deterministic_under_seed() {
        let mk =
            || one_thread_system(AddressPattern::working_set(0x1000_0000, 5_000, 0.7), 0.2).run();
        let a = mk();
        let b = mk();
        assert_eq!(a.cache, b.cache);
        assert_eq!(a.mem, b.mem);
    }

    #[test]
    #[should_panic]
    fn too_many_threads_rejected() {
        let mesh = Mesh::square(2);
        let cfg = SystemConfig::paper_defaults(mesh);
        let app = CacheAppSpec {
            name: "big".into(),
            threads: (0..5)
                .map(|_| ThreadSpec {
                    accesses_per_kilocycle: 1.0,
                    write_fraction: 0.0,
                    line_reuse: 1,
                    private: AddressPattern::stream(0, 10),
                    shared_fraction: 0.0,
                })
                .collect(),
            shared: AddressPattern::stream(0, 1),
        };
        let _ = CmpSystem::new(cfg, vec![app]);
    }
}
