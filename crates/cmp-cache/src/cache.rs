//! A set-associative LRU cache built from [`LruSet`]s.

use crate::lru::{Access, LruSet};
use serde::{Deserialize, Serialize};

/// Geometry of one cache (or one bank of a distributed cache).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// XOR-fold the upper address bits into the set index (common in
    /// L2/LLC designs) — protects against pathological set aliasing when
    /// software allocates large power-of-two-aligned regions.
    pub hashed_index: bool,
}

impl CacheConfig {
    /// Table 2's private L1: 32 KB, 2-way, 64 B lines.
    pub fn paper_l1() -> Self {
        CacheConfig {
            capacity_bytes: 32 * 1024,
            ways: 2,
            line_bytes: 64,
            hashed_index: false,
        }
    }

    /// Table 2's L2 bank: 256 KB, 16-way, 64 B lines.
    pub fn paper_l2_bank() -> Self {
        CacheConfig {
            capacity_bytes: 256 * 1024,
            ways: 16,
            line_bytes: 64,
            hashed_index: true,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        let lines = self.capacity_bytes / self.line_bytes;
        (lines as usize / self.ways).max(1)
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate over all accesses (0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A set-associative LRU cache over line addresses.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<LruSet>,
    stats: CacheStats,
    set_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Build an empty cache.
    ///
    /// # Panics
    /// Panics unless line size and set count are powers of two (real
    /// indexing hardware).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size power of two");
        let sets = cfg.num_sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: (0..sets).map(|_| LruSet::new(cfg.ways)).collect(),
            stats: CacheStats::default(),
            set_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            cfg,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.set_shift;
        let bits = self.sets.len().trailing_zeros();
        let set = if self.cfg.hashed_index {
            (line ^ (line >> bits) ^ (line >> (2 * bits))) & self.set_mask
        } else {
            line & self.set_mask
        };
        // The tag is the full line number so victims can be reconstructed
        // regardless of the index scheme.
        (set as usize, line)
    }

    /// Access the line containing `addr`. Returns `Some(victim_line_addr)`
    /// when the fill evicted another line (needed for coherence
    /// bookkeeping), `None` on hits and eviction-free fills; hit/miss is
    /// recorded in [`Cache::stats`].
    pub fn access(&mut self, addr: u64) -> AccessResult {
        let (set, tag) = self.set_and_tag(addr);
        match self.sets[set].access(tag) {
            Access::Hit => {
                self.stats.hits += 1;
                AccessResult::Hit
            }
            Access::MissFilled => {
                self.stats.misses += 1;
                AccessResult::Miss { victim: None }
            }
            Access::MissEvicted(victim_line) => {
                self.stats.misses += 1;
                self.stats.evictions += 1;
                AccessResult::Miss {
                    victim: Some(victim_line << self.set_shift),
                }
            }
        }
    }

    /// Whether the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].contains(tag)
    }

    /// Invalidate the line containing `addr` (coherence).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let hit = self.sets[set].invalidate(tag);
        if hit {
            self.stats.invalidations += 1;
        }
        hit
    }

    /// Record `n` additional hits that bypassed the tag arrays (intra-line
    /// word accesses following a line touch — they hit by construction and
    /// would distort hit-rate statistics if dropped).
    pub fn record_free_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    Hit,
    Miss {
        /// Evicted line's base address, if any.
        victim: Option<u64>,
    },
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Naive reference: per-set vector of tags in recency order.
    struct RefCache {
        sets: Vec<Vec<u64>>,
        ways: usize,
        set_bits: u32,
        line_shift: u32,
        hashed: bool,
    }

    impl RefCache {
        fn new(cfg: CacheConfig) -> Self {
            let sets = cfg.num_sets();
            RefCache {
                sets: vec![Vec::new(); sets],
                ways: cfg.ways,
                set_bits: sets.trailing_zeros(),
                line_shift: cfg.line_bytes.trailing_zeros(),
                hashed: cfg.hashed_index,
            }
        }

        fn set_of(&self, addr: u64) -> usize {
            let line = addr >> self.line_shift;
            let mask = (1u64 << self.set_bits) - 1;
            let set = if self.hashed {
                (line ^ (line >> self.set_bits) ^ (line >> (2 * self.set_bits))) & mask
            } else {
                line & mask
            };
            set as usize
        }

        /// Returns true on hit.
        fn access(&mut self, addr: u64) -> bool {
            let line = addr >> self.line_shift;
            let set = self.set_of(addr);
            let v = &mut self.sets[set];
            if let Some(pos) = v.iter().position(|&t| t == line) {
                let t = v.remove(pos);
                v.insert(0, t);
                true
            } else {
                v.insert(0, line);
                v.truncate(self.ways);
                false
            }
        }
    }

    proptest! {
        /// The production cache and the naive reference agree hit-for-hit
        /// on arbitrary access streams, for plain and hashed indexing.
        #[test]
        fn cache_matches_reference(
            addrs in proptest::collection::vec(0u64..(1 << 20), 1..400),
            hashed in proptest::bool::ANY,
        ) {
            let cfg = CacheConfig {
                capacity_bytes: 4 * 1024,
                ways: 2,
                line_bytes: 64,
                hashed_index: hashed,
            };
            let mut cache = Cache::new(cfg);
            let mut reference = RefCache::new(cfg);
            for &a in &addrs {
                let got = matches!(cache.access(a), AccessResult::Hit);
                let want = reference.access(a);
                prop_assert_eq!(got, want, "diverged at addr {:#x}", a);
            }
        }

        /// Invalidate-then-access always misses.
        #[test]
        fn invalidated_lines_miss(
            addrs in proptest::collection::vec(0u64..(1 << 16), 1..100),
        ) {
            let mut cache = Cache::new(CacheConfig::paper_l1());
            for &a in &addrs {
                cache.access(a);
                cache.invalidate(a);
                let missed = matches!(cache.access(a), AccessResult::Miss { .. });
                prop_assert!(missed);
                cache.invalidate(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let l1 = CacheConfig::paper_l1();
        assert_eq!(l1.num_sets(), 256); // 32KB / 64B / 2
        let l2 = CacheConfig::paper_l2_bank();
        assert_eq!(l2.num_sets(), 256); // 256KB / 64B / 16
    }

    #[test]
    fn sequential_within_capacity_all_hits_second_pass() {
        let mut c = Cache::new(CacheConfig::paper_l1());
        let lines = 32 * 1024 / 64;
        for i in 0..lines {
            assert_eq!(c.access(i * 64), AccessResult::Miss { victim: None });
        }
        for i in 0..lines {
            assert_eq!(c.access(i * 64), AccessResult::Hit, "line {i}");
        }
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(CacheConfig::paper_l1());
        let lines = 2 * 32 * 1024 / 64; // 2× capacity
        for _round in 0..3 {
            for i in 0..lines {
                c.access(i * 64);
            }
        }
        // Sequential sweep over 2× capacity with LRU: ~0% hits.
        assert!(c.stats().hit_rate() < 0.01, "{}", c.stats().hit_rate());
    }

    #[test]
    fn eviction_reports_correct_victim_address() {
        // Direct-ish: use a tiny 2-set, 1-way cache.
        let cfg = CacheConfig {
            capacity_bytes: 2 * 64,
            ways: 1,
            line_bytes: 64,
            hashed_index: false,
        };
        let mut c = Cache::new(cfg);
        c.access(0); // set 0
                     // line 2 also maps to set 0 (2 sets): evicts line 0.
        match c.access(2 * 64) {
            AccessResult::Miss { victim: Some(v) } => assert_eq!(v, 0),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(!c.contains(0));
        assert!(c.contains(2 * 64));
    }

    #[test]
    fn same_line_offsets_share_residency() {
        let mut c = Cache::new(CacheConfig::paper_l1());
        c.access(0x1000);
        assert_eq!(c.access(0x103F), AccessResult::Hit); // same 64B line
        assert!(matches!(c.access(0x1040), AccessResult::Miss { .. }));
    }

    #[test]
    fn invalidation_counts() {
        let mut c = Cache::new(CacheConfig::paper_l1());
        c.access(0x40);
        assert!(c.invalidate(0x40));
        assert!(!c.contains(0x40));
        assert_eq!(c.stats().invalidations, 1);
        assert!(matches!(c.access(0x40), AccessResult::Miss { .. }));
    }

    #[test]
    fn hashed_index_breaks_aligned_aliasing() {
        // 64 regions whose bases are all ≡ 0 mod (sets × line): plain
        // modulo indexing piles them onto one set; hashed indexing spreads
        // them and must deliver a far higher hit rate.
        let mk = |hashed: bool| {
            let mut c = Cache::new(CacheConfig {
                capacity_bytes: 256 * 1024,
                ways: 16,
                line_bytes: 64,
                hashed_index: hashed,
            });
            // touch 64 aligned regions of 8 lines, 3 rounds
            for _ in 0..3 {
                for region in 0..64u64 {
                    for l in 0..8u64 {
                        c.access((region * 256 + l) * 64 * 256);
                    }
                }
            }
            c.stats().hit_rate()
        };
        let plain = mk(false);
        let hashed = mk(true);
        assert!(hashed > plain + 0.3, "hashed {hashed} vs plain {plain}");
    }

    #[test]
    fn bigger_cache_never_lower_hit_rate_on_same_stream() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let small = CacheConfig {
            capacity_bytes: 8 * 1024,
            ways: 2,
            line_bytes: 64,
            hashed_index: false,
        };
        let big = CacheConfig {
            capacity_bytes: 64 * 1024,
            ways: 2,
            line_bytes: 64,
            hashed_index: false,
        };
        let mut cs = Cache::new(small);
        let mut cb = Cache::new(big);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20_000 {
            // 32 KB working set with reuse
            let addr = (rng.gen_range(0..512u64) * 64) | 0x10_0000;
            cs.access(addr);
            cb.access(addr);
        }
        assert!(cb.stats().hit_rate() >= cs.stats().hit_rate());
    }
}
