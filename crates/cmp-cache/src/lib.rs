//! CMP cache-hierarchy model — the workspace's substitute for the
//! GEMS/Ruby memory-system timing the paper obtains through full-system
//! simulation (DESIGN.md §4.4).
//!
//! The mapping formulation only consumes two numbers per thread: the
//! shared-L2-cache request rate `c_j` and the memory-controller request
//! rate `m_j`. The `workload` crate *calibrates* those to the paper's
//! Table 3; this crate *derives* them from first principles instead:
//!
//! * per-core private L1s (Table 2: 32 KB, 2-way, LRU) — [`cache`];
//! * a distributed shared L2 (256 KB × N banks, 16-way, address-
//!   interleaved via the same [`noc_model::hashing::BankHash`] the latency
//!   model uses) with a MOESI-lite directory — [`coherence`];
//! * synthetic per-thread address streams spanning the locality regimes
//!   of the PARSEC codes — [`address`];
//! * a system driver that filters the streams through the hierarchy and
//!   emits per-epoch request-rate traces convertible to a
//!   [`workload::Workload`] — [`system`].
//!
//! ```
//! use cmp_cache::address::AddressPattern;
//! use cmp_cache::system::{CacheAppSpec, CmpSystem, SystemConfig, ThreadSpec};
//! use noc_model::Mesh;
//!
//! let cfg = SystemConfig { epochs: 20, ..SystemConfig::paper_defaults(Mesh::square(4)) };
//! let app = CacheAppSpec {
//!     name: "stream-like".into(),
//!     threads: vec![ThreadSpec {
//!         accesses_per_kilocycle: 150.0,
//!         write_fraction: 0.25,
//!         line_reuse: 8,
//!         private: AddressPattern::working_set(0x1000_0000, 30_000, 0.7),
//!         shared_fraction: 0.05,
//!     }],
//!     shared: AddressPattern::working_set(0x9000_0000, 128, 0.8),
//! };
//! let traces = CmpSystem::new(cfg, vec![app]).run();
//! let workload = traces.to_workload();     // feeds obm-core
//! assert!(workload.apps[0].total_rate() > 0.0);
//! ```

pub mod address;
pub mod cache;
pub mod coherence;
pub mod lru;
pub mod system;

pub use address::AddressPattern;
pub use cache::{Cache, CacheConfig, CacheStats};
pub use coherence::Directory;
pub use system::{CacheAppSpec, CacheTraces, CmpSystem, SystemConfig, ThreadSpec};
