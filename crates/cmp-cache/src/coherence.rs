//! MOESI-lite directory coherence at the shared L2.
//!
//! The paper's platform runs MOESI (Table 2). For traffic-rate purposes
//! only the *protocol events* matter — which accesses generate which
//! packets — not the full state machine, so this directory tracks, per
//! line, one optional owner (M/O states collapsed) and a sharer set
//! (S state), and reports the packet-generating events of each access:
//! owner forwards on remote reads, invalidations on writes. The classic
//! invariants (owner ∉ sharers; write ⇒ sole owner, no sharers) are
//! enforced with debug assertions and checked by tests.

use std::collections::HashMap;

/// Directory entry for one cached line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Core holding the line in an owned (M/O/E) state.
    pub owner: Option<u16>,
    /// Bitmask of cores holding the line shared (S).
    pub sharers: u64,
}

impl DirEntry {
    fn is_sharer(&self, core: u16) -> bool {
        self.sharers >> core & 1 == 1
    }

    /// Number of cores holding the line in shared state.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Whether `core` holds the line shared (test/introspection helper).
    pub fn has_sharer(&self, core: u16) -> bool {
        self.is_sharer(core)
    }

    fn check_invariants(&self) {
        if let Some(o) = self.owner {
            debug_assert!(!self.is_sharer(o), "owner {o} also a sharer");
        }
    }
}

/// Packet-relevant outcome of a directory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoherenceEvents {
    /// Checking/forwarding packets to other private L1s (each is
    /// cache-class traffic in the paper's model).
    pub forwards: u32,
    /// Invalidation packets sent to sharers/owner on a write.
    pub invalidations: u32,
}

/// The directory (one logically; physically distributed across L2 banks —
/// bank selection is handled by the system model).
#[derive(Debug, Clone, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
    /// Cores whose L1 must invalidate a line as a side effect of the last
    /// access (the system model applies these to the L1 models).
    pending_invalidations: Vec<(u16, u64)>,
}

impl Directory {
    /// Empty directory (supports up to 64 cores).
    pub fn new() -> Self {
        Directory::default()
    }

    /// A read of `line` by `core` reached the directory (L1 missed).
    /// Returns the coherence packets generated beyond the base
    /// request/response pair.
    pub fn read(&mut self, core: u16, line: u64) -> CoherenceEvents {
        assert!(core < 64);
        let e = self.entries.entry(line).or_default();
        let mut ev = CoherenceEvents {
            forwards: 0,
            invalidations: 0,
        };
        match e.owner {
            Some(o) if o != core => {
                // Owner forwards the data (M/O → O, reader becomes sharer).
                ev.forwards = 1;
                e.sharers |= 1 << core;
            }
            Some(_) => { /* silent upgrade of our own owned line */ }
            None => {
                e.sharers |= 1 << core;
            }
        }
        e.check_invariants();
        ev
    }

    /// A write of `line` by `core` reached the directory. All other
    /// holders are invalidated; `core` becomes sole owner.
    pub fn write(&mut self, core: u16, line: u64) -> CoherenceEvents {
        assert!(core < 64);
        let e = self.entries.entry(line).or_default();
        let mut inv = 0;
        if let Some(o) = e.owner {
            if o != core {
                inv += 1;
                self.pending_invalidations.push((o, line));
            }
        }
        let mut sharers = e.sharers & !(1 << core);
        while sharers != 0 {
            let s = sharers.trailing_zeros() as u16;
            sharers &= sharers - 1;
            inv += 1;
            self.pending_invalidations.push((s, line));
        }
        e.owner = Some(core);
        e.sharers = 0;
        e.check_invariants();
        CoherenceEvents {
            forwards: 0,
            invalidations: inv,
        }
    }

    /// The line left the L2 (capacity eviction): every cached private copy
    /// must be invalidated too (inclusive hierarchy).
    pub fn evict(&mut self, line: u64) -> u32 {
        let Some(e) = self.entries.remove(&line) else {
            return 0;
        };
        let mut count = 0;
        if let Some(o) = e.owner {
            self.pending_invalidations.push((o, line));
            count += 1;
        }
        let mut sharers = e.sharers;
        while sharers != 0 {
            let s = sharers.trailing_zeros() as u16;
            sharers &= sharers - 1;
            self.pending_invalidations.push((s, line));
            count += 1;
        }
        count
    }

    /// Drain the L1 invalidations produced by recent writes/evictions.
    pub fn take_invalidations(&mut self) -> Vec<(u16, u64)> {
        std::mem::take(&mut self.pending_invalidations)
    }

    /// Directory state of a line (testing / introspection).
    pub fn entry(&self, line: u64) -> Option<DirEntry> {
        self.entries.get(&line).copied()
    }

    /// Number of tracked lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_read_share() {
        let mut d = Directory::new();
        assert_eq!(d.read(0, 100).forwards, 0);
        assert_eq!(d.read(1, 100).forwards, 0);
        let e = d.entry(100).unwrap();
        assert_eq!(e.owner, None);
        assert_eq!(e.sharer_count(), 2);
    }

    #[test]
    fn write_invalidates_all_sharers() {
        let mut d = Directory::new();
        d.read(0, 7);
        d.read(1, 7);
        d.read(2, 7);
        let ev = d.write(3, 7);
        assert_eq!(ev.invalidations, 3);
        let e = d.entry(7).unwrap();
        assert_eq!(e.owner, Some(3));
        assert_eq!(e.sharer_count(), 0);
        let mut invs = d.take_invalidations();
        invs.sort_unstable();
        assert_eq!(invs, vec![(0, 7), (1, 7), (2, 7)]);
    }

    #[test]
    fn remote_read_of_owned_line_forwards() {
        let mut d = Directory::new();
        d.write(0, 9);
        let ev = d.read(1, 9);
        assert_eq!(ev.forwards, 1);
        let e = d.entry(9).unwrap();
        // owner retains ownership (O state), reader becomes sharer
        assert_eq!(e.owner, Some(0));
        assert!(e.is_sharer(1));
    }

    #[test]
    fn own_write_after_own_write_is_silent() {
        let mut d = Directory::new();
        d.write(5, 11);
        let ev = d.write(5, 11);
        assert_eq!(ev.invalidations, 0);
        assert!(d.take_invalidations().is_empty());
    }

    #[test]
    fn writer_among_sharers_not_self_invalidated() {
        let mut d = Directory::new();
        d.read(0, 3);
        d.read(1, 3);
        let ev = d.write(0, 3);
        assert_eq!(ev.invalidations, 1); // only core 1
        assert_eq!(d.take_invalidations(), vec![(1, 3)]);
    }

    #[test]
    fn evict_invalidates_every_copy() {
        let mut d = Directory::new();
        d.write(0, 42);
        d.read(1, 42);
        d.read(2, 42);
        let n = d.evict(42);
        assert_eq!(n, 3); // owner + 2 sharers
        assert!(d.entry(42).is_none());
        assert_eq!(d.take_invalidations().len(), 3);
    }

    #[test]
    fn invariant_owner_never_sharer() {
        let mut d = Directory::new();
        for step in 0..200u64 {
            let core = (step % 5) as u16;
            let line = step % 7;
            if step % 3 == 0 {
                d.write(core, line);
            } else {
                d.read(core, line);
            }
            if let Some(e) = d.entry(line) {
                if let Some(o) = e.owner {
                    assert!(!e.is_sharer(o));
                }
            }
            d.take_invalidations();
        }
    }
}
