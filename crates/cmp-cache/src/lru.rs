//! A fixed-associativity LRU set — the building block of every cache
//! level (Table 2: L1 2-way LRU, L2 16-way LRU).

/// One set of an LRU cache: at most `ways` tags, most-recently-used first.
#[derive(Debug, Clone)]
pub struct LruSet {
    ways: usize,
    /// Tags in recency order (index 0 = MRU).
    tags: Vec<u64>,
}

/// Outcome of an access to a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Tag was present; promoted to MRU.
    Hit,
    /// Tag was absent and inserted without eviction.
    MissFilled,
    /// Tag was absent; the returned victim tag was evicted.
    MissEvicted(u64),
}

impl LruSet {
    /// An empty set with the given associativity.
    ///
    /// # Panics
    /// Panics if `ways == 0`.
    pub fn new(ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        LruSet {
            ways,
            tags: Vec::with_capacity(ways),
        }
    }

    /// Access `tag`, updating recency and filling on a miss.
    pub fn access(&mut self, tag: u64) -> Access {
        if let Some(pos) = self.tags.iter().position(|&t| t == tag) {
            let t = self.tags.remove(pos);
            self.tags.insert(0, t);
            return Access::Hit;
        }
        self.tags.insert(0, tag);
        if self.tags.len() > self.ways {
            let victim = self.tags.pop().expect("overflow tag");
            Access::MissEvicted(victim)
        } else {
            Access::MissFilled
        }
    }

    /// Whether `tag` is resident (no recency update).
    pub fn contains(&self, tag: u64) -> bool {
        self.tags.contains(&tag)
    }

    /// Invalidate `tag` if present (coherence back-invalidation).
    pub fn invalidate(&mut self, tag: u64) -> bool {
        if let Some(pos) = self.tags.iter().position(|&t| t == tag) {
            self.tags.remove(pos);
            true
        } else {
            false
        }
    }

    /// Resident line count.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the set holds no lines.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_promotes_to_mru() {
        let mut s = LruSet::new(2);
        assert_eq!(s.access(1), Access::MissFilled);
        assert_eq!(s.access(2), Access::MissFilled);
        assert_eq!(s.access(1), Access::Hit); // 1 is MRU now
        assert_eq!(s.access(3), Access::MissEvicted(2)); // 2 was LRU
        assert!(s.contains(1) && s.contains(3) && !s.contains(2));
    }

    #[test]
    fn strict_lru_order() {
        let mut s = LruSet::new(3);
        for t in [10, 20, 30] {
            s.access(t);
        }
        // Touch 10, insert 40: victim must be 20.
        s.access(10);
        assert_eq!(s.access(40), Access::MissEvicted(20));
    }

    #[test]
    fn invalidate_removes() {
        let mut s = LruSet::new(2);
        s.access(5);
        assert!(s.invalidate(5));
        assert!(!s.contains(5));
        assert!(!s.invalidate(5));
        assert!(s.is_empty());
    }

    #[test]
    fn direct_mapped_behaviour() {
        let mut s = LruSet::new(1);
        assert_eq!(s.access(1), Access::MissFilled);
        assert_eq!(s.access(2), Access::MissEvicted(1));
        assert_eq!(s.access(2), Access::Hit);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_ways_rejected() {
        let _ = LruSet::new(0);
    }
}
