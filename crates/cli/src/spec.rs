//! The plain-text instance specification format read and written by the
//! `obm` CLI.
//!
//! ```text
//! # comments start with '#'
//! mesh 8 8                 # rows cols
//! controllers corners      # corners | edges | tiles k1 k2 ... (paper numbering)
//! app web 2                # name thread-count, followed by that many:
//! thread 4.0 0.6           # cache-rate memory-rate (requests/kilocycle)
//! thread 3.5 0.5
//! app batch 2
//! thread 9.0 1.2
//! thread 8.0 1.1
//! weights 2 1              # optional per-app priority weights
//! ```
//!
//! Thread counts may total less than the tile count (surplus tiles stay
//! idle), never more.

use noc_model::{LatencyParams, MemoryControllers, Mesh, TileId, TileLatencies};
use obm_core::ObmInstance;
use std::fmt::Write as _;

/// A parsed instance specification.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    pub rows: usize,
    pub cols: usize,
    pub controllers: ControllerSpec,
    pub apps: Vec<AppEntry>,
    pub weights: Option<Vec<f64>>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ControllerSpec {
    Corners,
    Edges,
    Tiles(Vec<usize>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct AppEntry {
    pub name: String,
    /// (cache_rate, mem_rate) per thread.
    pub threads: Vec<(f64, f64)>,
}

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

impl InstanceSpec {
    /// Parse the text format.
    pub fn parse(text: &str) -> Result<InstanceSpec, ParseError> {
        let mut mesh: Option<(usize, usize)> = None;
        let mut controllers = ControllerSpec::Corners;
        let mut apps: Vec<AppEntry> = Vec::new();
        let mut weights: Option<Vec<f64>> = None;
        let mut pending_threads = 0usize;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            let keyword = tok.next().expect("non-empty line");
            let rest: Vec<&str> = tok.collect();
            match keyword {
                "mesh" => {
                    if rest.len() != 2 {
                        return Err(err(lineno, "mesh takes: rows cols"));
                    }
                    let rows = rest[0]
                        .parse::<usize>()
                        .map_err(|e| err(lineno, format!("bad rows: {e}")))?;
                    let cols = rest[1]
                        .parse::<usize>()
                        .map_err(|e| err(lineno, format!("bad cols: {e}")))?;
                    if rows == 0 || cols == 0 {
                        return Err(err(lineno, "mesh dimensions must be positive"));
                    }
                    mesh = Some((rows, cols));
                }
                "controllers" => match rest.first() {
                    Some(&"corners") => controllers = ControllerSpec::Corners,
                    Some(&"edges") => controllers = ControllerSpec::Edges,
                    Some(&"tiles") => {
                        let ids: Result<Vec<usize>, _> =
                            rest[1..].iter().map(|s| s.parse::<usize>()).collect();
                        let ids = ids.map_err(|e| err(lineno, format!("bad tile id: {e}")))?;
                        if ids.is_empty() {
                            return Err(err(lineno, "controllers tiles needs at least one id"));
                        }
                        if ids.contains(&0) {
                            return Err(err(lineno, "tile numbers are 1-based (paper Eq. 1)"));
                        }
                        controllers = ControllerSpec::Tiles(ids);
                    }
                    _ => {
                        return Err(err(
                            lineno,
                            "controllers takes: corners | edges | tiles k1 k2 ...",
                        ))
                    }
                },
                "app" => {
                    if pending_threads > 0 {
                        return Err(err(
                            lineno,
                            format!("previous app still expects {pending_threads} thread line(s)"),
                        ));
                    }
                    if rest.len() != 2 {
                        return Err(err(lineno, "app takes: name thread-count"));
                    }
                    let count = rest[1]
                        .parse::<usize>()
                        .map_err(|e| err(lineno, format!("bad thread count: {e}")))?;
                    if count == 0 {
                        return Err(err(lineno, "apps need at least one thread"));
                    }
                    apps.push(AppEntry {
                        name: rest[0].to_string(),
                        threads: Vec::with_capacity(count),
                    });
                    pending_threads = count;
                }
                "thread" => {
                    if pending_threads == 0 {
                        return Err(err(lineno, "thread line outside an app block"));
                    }
                    if rest.len() != 2 {
                        return Err(err(lineno, "thread takes: cache-rate mem-rate"));
                    }
                    let c = rest[0]
                        .parse::<f64>()
                        .map_err(|e| err(lineno, format!("bad cache rate: {e}")))?;
                    let m = rest[1]
                        .parse::<f64>()
                        .map_err(|e| err(lineno, format!("bad mem rate: {e}")))?;
                    if c < 0.0 || m < 0.0 || !c.is_finite() || !m.is_finite() {
                        return Err(err(lineno, "rates must be finite and non-negative"));
                    }
                    apps.last_mut()
                        .expect("inside app block")
                        .threads
                        .push((c, m));
                    pending_threads -= 1;
                }
                "weights" => {
                    let ws: Result<Vec<f64>, _> = rest.iter().map(|s| s.parse::<f64>()).collect();
                    let ws = ws.map_err(|e| err(lineno, format!("bad weight: {e}")))?;
                    if ws.iter().any(|&w| !w.is_finite() || w <= 0.0) {
                        return Err(err(lineno, "weights must be positive"));
                    }
                    weights = Some(ws);
                }
                other => return Err(err(lineno, format!("unknown keyword '{other}'"))),
            }
        }
        if pending_threads > 0 {
            return Err(err(
                text.lines().count(),
                format!("last app still expects {pending_threads} thread line(s)"),
            ));
        }
        let (rows, cols) = mesh.ok_or_else(|| err(1, "missing 'mesh rows cols' line"))?;
        if apps.is_empty() {
            return Err(err(1, "no applications declared"));
        }
        let total: usize = apps.iter().map(|a| a.threads.len()).sum();
        if total > rows * cols {
            return Err(err(
                1,
                format!("{total} threads exceed {} tiles", rows * cols),
            ));
        }
        if let Some(ws) = &weights {
            if ws.len() != apps.len() {
                return Err(err(
                    1,
                    format!("{} weights for {} apps", ws.len(), apps.len()),
                ));
            }
        }
        Ok(InstanceSpec {
            rows,
            cols,
            controllers,
            apps,
            weights,
        })
    }

    /// Serialize back to the text format (parse∘render is the identity on
    /// the parsed structure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "mesh {} {}", self.rows, self.cols);
        match &self.controllers {
            ControllerSpec::Corners => {
                let _ = writeln!(out, "controllers corners");
            }
            ControllerSpec::Edges => {
                let _ = writeln!(out, "controllers edges");
            }
            ControllerSpec::Tiles(ids) => {
                let list: Vec<String> = ids.iter().map(|k| k.to_string()).collect();
                let _ = writeln!(out, "controllers tiles {}", list.join(" "));
            }
        }
        for app in &self.apps {
            let _ = writeln!(out, "app {} {}", app.name, app.threads.len());
            for &(c, m) in &app.threads {
                let _ = writeln!(out, "thread {c} {m}");
            }
        }
        if let Some(ws) = &self.weights {
            let list: Vec<String> = ws.iter().map(|w| w.to_string()).collect();
            let _ = writeln!(out, "weights {}", list.join(" "));
        }
        out
    }

    /// The mesh described by this spec.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(self.rows, self.cols)
    }

    /// The memory-controller placement.
    pub fn memory_controllers(&self) -> MemoryControllers {
        let mesh = self.mesh();
        match &self.controllers {
            ControllerSpec::Corners => MemoryControllers::corners(&mesh),
            ControllerSpec::Edges => MemoryControllers::edge_centers(&mesh),
            ControllerSpec::Tiles(ids) => MemoryControllers::custom(
                &mesh,
                ids.iter().map(|&k| TileId::from_paper(k)).collect(),
            ),
        }
    }

    /// Build the OBM instance (Table 2 latency parameters).
    pub fn to_instance(&self) -> ObmInstance {
        let mesh = self.mesh();
        let tiles = TileLatencies::compute(
            &mesh,
            &self.memory_controllers(),
            LatencyParams::paper_table2(),
        );
        let mut c = Vec::new();
        let mut m = Vec::new();
        let mut bounds = vec![0];
        for app in &self.apps {
            for &(cj, mj) in &app.threads {
                c.push(cj);
                m.push(mj);
            }
            bounds.push(c.len());
        }
        let inst = ObmInstance::new(tiles, bounds, c, m);
        match &self.weights {
            Some(ws) => inst.with_app_weights(ws.clone()),
            None => inst,
        }
    }

    /// Application names in declaration order.
    pub fn app_names(&self) -> Vec<&str> {
        self.apps.iter().map(|a| a.name.as_str()).collect()
    }
}

/// Build a spec from a generated paper workload (the `obm gen` command).
pub fn spec_from_workload(w: &workload::Workload, rows: usize, cols: usize) -> InstanceSpec {
    InstanceSpec {
        rows,
        cols,
        controllers: ControllerSpec::Corners,
        apps: w
            .apps
            .iter()
            .map(|a| AppEntry {
                name: a.name.replace(' ', "-"),
                threads: a
                    .threads
                    .iter()
                    .map(|t| (t.cache_rate, t.mem_rate))
                    .collect(),
            })
            .collect(),
        weights: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo chip
mesh 4 4
controllers corners
app web 2
thread 4.0 0.6
thread 3.5 0.5
app batch 2
thread 9.0 1.2
thread 8.0 1.1
weights 2 1
";

    #[test]
    fn parse_sample() {
        let spec = InstanceSpec::parse(SAMPLE).unwrap();
        assert_eq!(spec.rows, 4);
        assert_eq!(spec.apps.len(), 2);
        assert_eq!(spec.apps[0].name, "web");
        assert_eq!(spec.apps[1].threads[0], (9.0, 1.2));
        assert_eq!(spec.weights, Some(vec![2.0, 1.0]));
    }

    #[test]
    fn roundtrip() {
        let spec = InstanceSpec::parse(SAMPLE).unwrap();
        let again = InstanceSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn to_instance_dimensions_and_weights() {
        let spec = InstanceSpec::parse(SAMPLE).unwrap();
        let inst = spec.to_instance();
        assert_eq!(inst.num_tiles(), 16);
        assert_eq!(inst.num_threads(), 4);
        assert_eq!(inst.num_apps(), 2);
        assert!(inst.is_weighted());
        assert_eq!(inst.app_weight(0), 2.0);
    }

    #[test]
    fn errors_have_line_numbers() {
        let e = InstanceSpec::parse("mesh 4\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = InstanceSpec::parse("mesh 2 2\napp a 1\nbogus 1 2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus") || e.message.contains("expects"));
    }

    #[test]
    fn thread_count_enforced() {
        let e = InstanceSpec::parse("mesh 2 2\napp a 2\nthread 1 0.1\napp b 1\nthread 1 0.1\n")
            .unwrap_err();
        assert!(e.message.contains("expects"), "{e}");
        let e = InstanceSpec::parse("mesh 2 2\napp a 1\nthread 1 0.1\nthread 1 0.1\n").unwrap_err();
        assert!(e.message.contains("outside"), "{e}");
    }

    #[test]
    fn capacity_enforced() {
        let mut text = String::from("mesh 2 2\napp big 5\n");
        for _ in 0..5 {
            text.push_str("thread 1 0.1\n");
        }
        let e = InstanceSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("exceed"), "{e}");
    }

    #[test]
    fn custom_controllers_parse_and_build() {
        let spec = InstanceSpec::parse("mesh 3 3\ncontrollers tiles 1 9\napp a 1\nthread 1 0.1\n")
            .unwrap();
        let mcs = spec.memory_controllers();
        assert_eq!(mcs.tiles().len(), 2);
    }

    #[test]
    fn weight_count_mismatch_rejected() {
        let e = InstanceSpec::parse("mesh 2 2\napp a 1\nthread 1 0.1\nweights 1 2\n").unwrap_err();
        assert!(
            e.message.contains("weights") || e.message.contains("apps"),
            "{e}"
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = InstanceSpec::parse(
            "\n# hi\nmesh 2 2 # trailing\n\napp a 1 # one thread\nthread 1 0.1\n",
        )
        .unwrap();
        assert_eq!(spec.apps.len(), 1);
    }
}
