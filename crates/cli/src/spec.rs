//! The plain-text instance specification format read and written by the
//! `obm` CLI.
//!
//! ```text
//! # comments start with '#'
//! mesh 8 8                 # rows cols
//! controllers corners      # corners | edges | tiles k1 k2 ... (paper numbering)
//! app web 2                # name thread-count, followed by that many:
//! thread 4.0 0.6           # cache-rate memory-rate (requests/kilocycle)
//! thread 3.5 0.5
//! app batch 2
//! thread 9.0 1.2
//! thread 8.0 1.1
//! weights 2 1              # optional per-app priority weights
//! ```
//!
//! Thread counts may total less than the tile count (surplus tiles stay
//! idle), never more.

use noc_model::{
    ChipLayout, LatencyParams, MemoryControllers, Mesh, TileId, TileLatencies, Topology,
};
use obm_core::ObmInstance;
use std::fmt::Write as _;

/// A parsed instance specification.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceSpec {
    pub rows: usize,
    pub cols: usize,
    pub controllers: ControllerSpec,
    pub apps: Vec<AppEntry>,
    pub weights: Option<Vec<f64>>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ControllerSpec {
    Corners,
    Edges,
    Tiles(Vec<usize>),
}

/// The `--mcs` flag grammar: `corners`, `edge-centers` (alias `edges`),
/// or `custom:<k1,k2,...>` with 1-based paper tile numbers. Range checks
/// against the mesh happen later, in [`InstanceSpec::set_controllers`].
impl std::str::FromStr for ControllerSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, SpecError> {
        let bad = |message: &str| SpecError::BadControllerFlag {
            value: s.to_string(),
            message: message.to_string(),
        };
        match s {
            "corners" => Ok(ControllerSpec::Corners),
            "edge-centers" | "edges" => Ok(ControllerSpec::Edges),
            other => {
                let Some(list) = other.strip_prefix("custom:") else {
                    return Err(bad("unknown placement"));
                };
                let ids: Vec<usize> = list
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad("tile list must be comma-separated integers"))?;
                if ids.is_empty() {
                    return Err(bad("custom: needs at least one tile"));
                }
                if ids.contains(&0) {
                    return Err(bad("tile numbers are 1-based (paper Eq. 1)"));
                }
                Ok(ControllerSpec::Tiles(ids))
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct AppEntry {
    pub name: String,
    /// (cache_rate, mem_rate) per thread.
    pub threads: Vec<(f64, f64)>,
}

/// A rejected instance specification (the `ConfigError` convention from
/// `noc-sim`: typed variants with readable messages, no panics — the CLI
/// surfaces these with a non-zero exit).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A malformed line, with its 1-based line number.
    Syntax { line: usize, message: String },
    /// No `mesh rows cols` line.
    MissingMesh,
    /// No `app` blocks.
    NoApps,
    /// The last `app` block declared more threads than it provided.
    DanglingThreads { app: String, missing: usize },
    /// Thread counts total more than the chip has tiles.
    CapacityExceeded { threads: usize, tiles: usize },
    /// The `weights` line length does not match the app count.
    WeightCountMismatch { weights: usize, apps: usize },
    /// A `controllers tiles` id is outside the mesh (1-based paper
    /// numbering).
    ControllerTileOutOfRange { tile: usize, tiles: usize },
    /// A malformed `--mcs` flag value.
    BadControllerFlag { value: String, message: String },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            SpecError::MissingMesh => write!(f, "missing 'mesh rows cols' line"),
            SpecError::NoApps => write!(f, "no applications declared"),
            SpecError::DanglingThreads { app, missing } => {
                write!(f, "app '{app}' still expects {missing} thread line(s)")
            }
            SpecError::CapacityExceeded { threads, tiles } => {
                write!(f, "{threads} threads exceed {tiles} tiles")
            }
            SpecError::WeightCountMismatch { weights, apps } => {
                write!(f, "{weights} weights for {apps} apps")
            }
            SpecError::ControllerTileOutOfRange { tile, tiles } => {
                write!(
                    f,
                    "controller tile {tile} out of range 1..={tiles} (paper numbering)"
                )
            }
            SpecError::BadControllerFlag { value, message } => {
                write!(
                    f,
                    "bad controller placement '{value}': {message} \
                     (try corners, edge-centers, or custom:<k1,k2,...>)"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError::Syntax {
        line,
        message: message.into(),
    }
}

impl InstanceSpec {
    /// Parse the text format.
    pub fn parse(text: &str) -> Result<InstanceSpec, SpecError> {
        let mut mesh: Option<(usize, usize)> = None;
        let mut controllers = ControllerSpec::Corners;
        let mut apps: Vec<AppEntry> = Vec::new();
        let mut weights: Option<Vec<f64>> = None;
        let mut pending_threads = 0usize;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            let Some(keyword) = tok.next() else {
                continue; // unreachable: the line is non-empty after trim
            };
            let rest: Vec<&str> = tok.collect();
            match keyword {
                "mesh" => {
                    if rest.len() != 2 {
                        return Err(err(lineno, "mesh takes: rows cols"));
                    }
                    let rows = rest[0]
                        .parse::<usize>()
                        .map_err(|e| err(lineno, format!("bad rows: {e}")))?;
                    let cols = rest[1]
                        .parse::<usize>()
                        .map_err(|e| err(lineno, format!("bad cols: {e}")))?;
                    if rows == 0 || cols == 0 {
                        return Err(err(lineno, "mesh dimensions must be positive"));
                    }
                    mesh = Some((rows, cols));
                }
                "controllers" => match rest.first() {
                    Some(&"corners") => controllers = ControllerSpec::Corners,
                    Some(&"edges") => controllers = ControllerSpec::Edges,
                    Some(&"tiles") => {
                        let ids: Result<Vec<usize>, _> =
                            rest[1..].iter().map(|s| s.parse::<usize>()).collect();
                        let ids = ids.map_err(|e| err(lineno, format!("bad tile id: {e}")))?;
                        if ids.is_empty() {
                            return Err(err(lineno, "controllers tiles needs at least one id"));
                        }
                        if ids.contains(&0) {
                            return Err(err(lineno, "tile numbers are 1-based (paper Eq. 1)"));
                        }
                        controllers = ControllerSpec::Tiles(ids);
                    }
                    _ => {
                        return Err(err(
                            lineno,
                            "controllers takes: corners | edges | tiles k1 k2 ...",
                        ))
                    }
                },
                "app" => {
                    if pending_threads > 0 {
                        return Err(err(
                            lineno,
                            format!("previous app still expects {pending_threads} thread line(s)"),
                        ));
                    }
                    if rest.len() != 2 {
                        return Err(err(lineno, "app takes: name thread-count"));
                    }
                    let count = rest[1]
                        .parse::<usize>()
                        .map_err(|e| err(lineno, format!("bad thread count: {e}")))?;
                    if count == 0 {
                        return Err(err(lineno, "apps need at least one thread"));
                    }
                    apps.push(AppEntry {
                        name: rest[0].to_string(),
                        threads: Vec::with_capacity(count),
                    });
                    pending_threads = count;
                }
                "thread" => {
                    if pending_threads == 0 {
                        return Err(err(lineno, "thread line outside an app block"));
                    }
                    if rest.len() != 2 {
                        return Err(err(lineno, "thread takes: cache-rate mem-rate"));
                    }
                    let c = rest[0]
                        .parse::<f64>()
                        .map_err(|e| err(lineno, format!("bad cache rate: {e}")))?;
                    let m = rest[1]
                        .parse::<f64>()
                        .map_err(|e| err(lineno, format!("bad mem rate: {e}")))?;
                    if c < 0.0 || m < 0.0 || !c.is_finite() || !m.is_finite() {
                        return Err(err(lineno, "rates must be finite and non-negative"));
                    }
                    match apps.last_mut() {
                        Some(app) => app.threads.push((c, m)),
                        // Unreachable: pending_threads > 0 implies an app
                        // block is open, but degrade to a typed error.
                        None => return Err(err(lineno, "thread line outside an app block")),
                    }
                    pending_threads -= 1;
                }
                "weights" => {
                    let ws: Result<Vec<f64>, _> = rest.iter().map(|s| s.parse::<f64>()).collect();
                    let ws = ws.map_err(|e| err(lineno, format!("bad weight: {e}")))?;
                    if ws.iter().any(|&w| !w.is_finite() || w <= 0.0) {
                        return Err(err(lineno, "weights must be positive"));
                    }
                    weights = Some(ws);
                }
                other => return Err(err(lineno, format!("unknown keyword '{other}'"))),
            }
        }
        if pending_threads > 0 {
            return Err(SpecError::DanglingThreads {
                app: apps.last().map(|a| a.name.clone()).unwrap_or_default(),
                missing: pending_threads,
            });
        }
        let (rows, cols) = mesh.ok_or(SpecError::MissingMesh)?;
        if apps.is_empty() {
            return Err(SpecError::NoApps);
        }
        let total: usize = apps.iter().map(|a| a.threads.len()).sum();
        if total > rows * cols {
            return Err(SpecError::CapacityExceeded {
                threads: total,
                tiles: rows * cols,
            });
        }
        if let Some(ws) = &weights {
            if ws.len() != apps.len() {
                return Err(SpecError::WeightCountMismatch {
                    weights: ws.len(),
                    apps: apps.len(),
                });
            }
        }
        // Controller ids can only be range-checked once the mesh is known
        // (the `controllers` line may precede `mesh`); checking here keeps
        // `memory_controllers()` panic-free.
        if let ControllerSpec::Tiles(ids) = &controllers {
            if let Some(&bad) = ids.iter().find(|&&k| k > rows * cols) {
                return Err(SpecError::ControllerTileOutOfRange {
                    tile: bad,
                    tiles: rows * cols,
                });
            }
        }
        Ok(InstanceSpec {
            rows,
            cols,
            controllers,
            apps,
            weights,
        })
    }

    /// Serialize back to the text format (parse∘render is the identity on
    /// the parsed structure).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "mesh {} {}", self.rows, self.cols);
        match &self.controllers {
            ControllerSpec::Corners => {
                let _ = writeln!(out, "controllers corners");
            }
            ControllerSpec::Edges => {
                let _ = writeln!(out, "controllers edges");
            }
            ControllerSpec::Tiles(ids) => {
                let list: Vec<String> = ids.iter().map(|k| k.to_string()).collect();
                let _ = writeln!(out, "controllers tiles {}", list.join(" "));
            }
        }
        for app in &self.apps {
            let _ = writeln!(out, "app {} {}", app.name, app.threads.len());
            for &(c, m) in &app.threads {
                let _ = writeln!(out, "thread {c} {m}");
            }
        }
        if let Some(ws) = &self.weights {
            let list: Vec<String> = ws.iter().map(|w| w.to_string()).collect();
            let _ = writeln!(out, "weights {}", list.join(" "));
        }
        out
    }

    /// The mesh described by this spec.
    pub fn mesh(&self) -> Mesh {
        Mesh::new(self.rows, self.cols)
    }

    /// The memory-controller placement.
    pub fn memory_controllers(&self) -> MemoryControllers {
        let mesh = self.mesh();
        match &self.controllers {
            ControllerSpec::Corners => MemoryControllers::corners(&mesh),
            ControllerSpec::Edges => MemoryControllers::edge_centers(&mesh),
            ControllerSpec::Tiles(ids) => MemoryControllers::try_custom(
                &mesh,
                ids.iter().map(|&k| TileId::from_paper(k)).collect(),
            )
            .expect("controller ids are range-checked at parse time"),
        }
    }

    /// Replace the controller placement, re-running the range check the
    /// parser applies (the `--mcs` override path).
    pub fn set_controllers(&mut self, controllers: ControllerSpec) -> Result<(), SpecError> {
        if let ControllerSpec::Tiles(ids) = &controllers {
            if let Some(&bad) = ids.iter().find(|&&k| k > self.rows * self.cols) {
                return Err(SpecError::ControllerTileOutOfRange {
                    tile: bad,
                    tiles: self.rows * self.cols,
                });
            }
        }
        self.controllers = controllers;
        Ok(())
    }

    /// The full chip layout this spec describes under `topology` (no
    /// failed links; the spec format has no syntax for them).
    pub fn chip_layout(&self, topology: Topology) -> ChipLayout {
        ChipLayout::try_new(self.mesh(), topology, self.memory_controllers(), Vec::new())
            .expect("spec controllers are range-checked, and no failed links are given")
    }

    /// Build the OBM instance (Table 2 latency parameters).
    pub fn to_instance(&self) -> ObmInstance {
        let mesh = self.mesh();
        let tiles = TileLatencies::compute(
            &mesh,
            &self.memory_controllers(),
            LatencyParams::paper_table2(),
        );
        self.instance_from_tiles(tiles)
    }

    /// [`InstanceSpec::to_instance`] for an explicit [`ChipLayout`]
    /// (the `--topology`/`--mcs` override path; identical to
    /// `to_instance` when the layout is the spec's own mesh default).
    pub fn to_instance_for_layout(&self, layout: &ChipLayout) -> ObmInstance {
        self.instance_from_tiles(TileLatencies::for_layout(
            layout,
            LatencyParams::paper_table2(),
        ))
    }

    fn instance_from_tiles(&self, tiles: TileLatencies) -> ObmInstance {
        let mut c = Vec::new();
        let mut m = Vec::new();
        let mut bounds = vec![0];
        for app in &self.apps {
            for &(cj, mj) in &app.threads {
                c.push(cj);
                m.push(mj);
            }
            bounds.push(c.len());
        }
        let inst = ObmInstance::new(tiles, bounds, c, m);
        match &self.weights {
            Some(ws) => inst.with_app_weights(ws.clone()),
            None => inst,
        }
    }

    /// Application names in declaration order.
    pub fn app_names(&self) -> Vec<&str> {
        self.apps.iter().map(|a| a.name.as_str()).collect()
    }
}

/// Build a spec from a generated paper workload (the `obm gen` command).
pub fn spec_from_workload(w: &workload::Workload, rows: usize, cols: usize) -> InstanceSpec {
    InstanceSpec {
        rows,
        cols,
        controllers: ControllerSpec::Corners,
        apps: w
            .apps
            .iter()
            .map(|a| AppEntry {
                name: a.name.replace(' ', "-"),
                threads: a
                    .threads
                    .iter()
                    .map(|t| (t.cache_rate, t.mem_rate))
                    .collect(),
            })
            .collect(),
        weights: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo chip
mesh 4 4
controllers corners
app web 2
thread 4.0 0.6
thread 3.5 0.5
app batch 2
thread 9.0 1.2
thread 8.0 1.1
weights 2 1
";

    #[test]
    fn parse_sample() {
        let spec = InstanceSpec::parse(SAMPLE).unwrap();
        assert_eq!(spec.rows, 4);
        assert_eq!(spec.apps.len(), 2);
        assert_eq!(spec.apps[0].name, "web");
        assert_eq!(spec.apps[1].threads[0], (9.0, 1.2));
        assert_eq!(spec.weights, Some(vec![2.0, 1.0]));
    }

    #[test]
    fn roundtrip() {
        let spec = InstanceSpec::parse(SAMPLE).unwrap();
        let again = InstanceSpec::parse(&spec.render()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn to_instance_dimensions_and_weights() {
        let spec = InstanceSpec::parse(SAMPLE).unwrap();
        let inst = spec.to_instance();
        assert_eq!(inst.num_tiles(), 16);
        assert_eq!(inst.num_threads(), 4);
        assert_eq!(inst.num_apps(), 2);
        assert!(inst.is_weighted());
        assert_eq!(inst.app_weight(0), 2.0);
    }

    #[test]
    fn errors_have_line_numbers() {
        match InstanceSpec::parse("mesh 4\n").unwrap_err() {
            SpecError::Syntax { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Syntax error, got {other:?}"),
        }
        match InstanceSpec::parse("mesh 2 2\napp a 1\nbogus 1 2\n").unwrap_err() {
            SpecError::Syntax { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("bogus") || message.contains("expects"));
            }
            other => panic!("expected Syntax error, got {other:?}"),
        }
    }

    #[test]
    fn thread_count_enforced() {
        let e = InstanceSpec::parse("mesh 2 2\napp a 2\nthread 1 0.1\napp b 1\nthread 1 0.1\n")
            .unwrap_err();
        assert!(e.to_string().contains("expects"), "{e}");
        let e = InstanceSpec::parse("mesh 2 2\napp a 1\nthread 1 0.1\nthread 1 0.1\n").unwrap_err();
        assert!(e.to_string().contains("outside"), "{e}");
        // A truncated trailing app block is a typed error naming the app.
        let e = InstanceSpec::parse("mesh 2 2\napp tail 3\nthread 1 0.1\n").unwrap_err();
        assert_eq!(
            e,
            SpecError::DanglingThreads {
                app: "tail".to_string(),
                missing: 2
            }
        );
    }

    #[test]
    fn capacity_enforced() {
        let mut text = String::from("mesh 2 2\napp big 5\n");
        for _ in 0..5 {
            text.push_str("thread 1 0.1\n");
        }
        let e = InstanceSpec::parse(&text).unwrap_err();
        assert_eq!(
            e,
            SpecError::CapacityExceeded {
                threads: 5,
                tiles: 4
            }
        );
        assert!(e.to_string().contains("exceed"), "{e}");
    }

    #[test]
    fn controller_tiles_out_of_range_rejected_even_before_mesh_line() {
        // `controllers` precedes `mesh`: the range check still fires.
        let e = InstanceSpec::parse("controllers tiles 99\nmesh 2 2\napp a 1\nthread 1 0.1\n")
            .unwrap_err();
        assert_eq!(
            e,
            SpecError::ControllerTileOutOfRange { tile: 99, tiles: 4 }
        );
        // In range parses and builds without panicking.
        let spec = InstanceSpec::parse("controllers tiles 4\nmesh 2 2\napp a 1\nthread 1 0.1\n")
            .expect("valid spec");
        assert_eq!(spec.memory_controllers().tiles().len(), 1);
    }

    #[test]
    fn custom_controllers_parse_and_build() {
        let spec = InstanceSpec::parse("mesh 3 3\ncontrollers tiles 1 9\napp a 1\nthread 1 0.1\n")
            .unwrap();
        let mcs = spec.memory_controllers();
        assert_eq!(mcs.tiles().len(), 2);
    }

    #[test]
    fn weight_count_mismatch_rejected() {
        let e = InstanceSpec::parse("mesh 2 2\napp a 1\nthread 1 0.1\nweights 1 2\n").unwrap_err();
        assert_eq!(
            e,
            SpecError::WeightCountMismatch {
                weights: 2,
                apps: 1
            }
        );
    }

    #[test]
    fn structural_errors_are_typed() {
        assert_eq!(
            InstanceSpec::parse("app a 1\nthread 1 0.1\n").unwrap_err(),
            SpecError::MissingMesh
        );
        assert_eq!(
            InstanceSpec::parse("mesh 2 2\n").unwrap_err(),
            SpecError::NoApps
        );
    }

    #[test]
    fn controller_spec_flag_grammar() {
        assert_eq!(
            "corners".parse::<ControllerSpec>(),
            Ok(ControllerSpec::Corners)
        );
        assert_eq!(
            "edge-centers".parse::<ControllerSpec>(),
            Ok(ControllerSpec::Edges)
        );
        assert_eq!("edges".parse::<ControllerSpec>(), Ok(ControllerSpec::Edges));
        assert_eq!(
            "custom:1,4,13,16".parse::<ControllerSpec>(),
            Ok(ControllerSpec::Tiles(vec![1, 4, 13, 16]))
        );
        for bad in ["ring", "custom:", "custom:1,x", "custom:0,2"] {
            let e = bad.parse::<ControllerSpec>().unwrap_err();
            assert!(
                matches!(e, SpecError::BadControllerFlag { .. }),
                "{bad}: {e:?}"
            );
            assert!(e.to_string().contains(bad), "{e}");
        }
    }

    #[test]
    fn set_controllers_range_checks_against_the_mesh() {
        let mut spec = InstanceSpec::parse(SAMPLE).unwrap();
        assert_eq!(
            spec.set_controllers(ControllerSpec::Tiles(vec![17])),
            Err(SpecError::ControllerTileOutOfRange {
                tile: 17,
                tiles: 16
            })
        );
        // The failed override must not have modified the spec.
        assert_eq!(spec.controllers, ControllerSpec::Corners);
        spec.set_controllers(ControllerSpec::Tiles(vec![6, 11]))
            .unwrap();
        assert_eq!(spec.memory_controllers().tiles().len(), 2);
    }

    #[test]
    fn default_layout_reproduces_to_instance() {
        let spec = InstanceSpec::parse(SAMPLE).unwrap();
        let layout = spec.chip_layout(Topology::Mesh);
        assert_eq!(layout.topology(), Topology::Mesh);
        assert_eq!(layout.controllers(), &spec.memory_controllers());
        let a = spec.to_instance();
        let b = spec.to_instance_for_layout(&layout);
        // Bit-identical latencies either way (the PR 8 delegation pin).
        for k in 0..a.num_tiles() {
            let t = TileId(k);
            assert_eq!(a.tiles().tc(t), b.tiles().tc(t));
            assert_eq!(a.tiles().tm(t), b.tiles().tm(t));
        }
    }

    #[test]
    fn torus_layout_changes_the_instance() {
        let spec = InstanceSpec::parse(SAMPLE).unwrap();
        let torus = spec.chip_layout(Topology::Torus);
        assert_eq!(torus.topology(), Topology::Torus);
        let a = spec.to_instance();
        let b = spec.to_instance_for_layout(&torus);
        // Wraparound shortens some tile's average distances.
        assert!((0..16).any(|k| a.tiles().tc(TileId(k)) != b.tiles().tc(TileId(k))));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = InstanceSpec::parse(
            "\n# hi\nmesh 2 2 # trailing\n\napp a 1 # one thread\nthread 1 0.1\n",
        )
        .unwrap();
        assert_eq!(spec.apps.len(), 1);
    }
}
