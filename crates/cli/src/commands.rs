//! CLI command implementations, kept pure (string in → string out) so the
//! tests can drive them without a process boundary.

use crate::spec::{spec_from_workload, ControllerSpec, InstanceSpec};
use noc_metrics::{MetricsHandle, MetricsRegistry, MetricsSnapshot};
use noc_model::{
    ChipLayout, LatencyParams, MemoryControllers, Mesh, TileId, TileLatencies, Topology,
};
use noc_sim::telemetry::heatmap::{PORT_EAST, PORT_NORTH, PORT_SOUTH, PORT_WEST};
use noc_sim::telemetry::json::Value;
use noc_sim::telemetry::{
    FlowAccum, JsonLinesSink, PacketRecord, Record, RingSink, Sink, WindowRecord,
};
use noc_sim::{Network, SimConfig};
use obm_core::algorithms::{
    BalancedGreedy, BranchAndBound, Global, HybridSssSa, Mapper, MonteCarlo, RandomMapper,
    SimulatedAnnealing, SortSelectSwap,
};
use obm_core::{evaluate, Mapping, ObjectiveSpec, ObmInstance, PlacementOptions, SearchMode};
use obm_portfolio::{Algorithm, Checkpoint, SolveBudget, SolveRequest};
use workload::{PaperConfig, WorkloadBuilder};

/// Layout flags shared by every spec-driven command: `--topology` picks
/// mesh or torus links, `--mcs` overrides the spec's controller
/// placement. Both default to the spec itself, keeping flag-free
/// invocations byte-identical to the pre-layout CLI.
#[derive(Clone, Copy, Default)]
pub struct LayoutFlags<'a> {
    /// `--topology mesh|torus` (None = spec default, mesh).
    pub topology: Option<&'a str>,
    /// `--mcs corners|edge-centers|custom:<k1,k2,...>` (None = spec).
    pub mcs: Option<&'a str>,
}

impl LayoutFlags<'_> {
    /// Apply the overrides to a parsed spec, returning the (possibly
    /// rewritten) spec and the chip layout commands should solve on.
    fn apply(&self, mut spec: InstanceSpec) -> Result<(InstanceSpec, ChipLayout), String> {
        let topology: Topology = match self.topology {
            Some(text) => text.parse().map_err(|e| format!("--topology: {e}"))?,
            None => Topology::Mesh,
        };
        if let Some(text) = self.mcs {
            let controllers: ControllerSpec = text.parse().map_err(|e| format!("--mcs: {e}"))?;
            spec.set_controllers(controllers)
                .map_err(|e| format!("--mcs: {e}"))?;
        }
        let layout = spec.chip_layout(topology);
        Ok((spec, layout))
    }
}

/// Resolve an algorithm name to a mapper.
pub fn mapper_by_name(name: &str) -> Result<Box<dyn Mapper>, String> {
    Ok(match name {
        "sss" => Box::new(SortSelectSwap::default()),
        "global" => Box::new(Global),
        "mc" => Box::new(MonteCarlo::with_samples(10_000)),
        "sa" => Box::new(SimulatedAnnealing::with_iterations(100_000)),
        "greedy" => Box::new(BalancedGreedy),
        "random" => Box::new(RandomMapper),
        other => {
            return Err(format!(
                "unknown algorithm '{other}' (try sss, global, mc, sa, greedy, random)"
            ))
        }
    })
}

/// `obm gen <C1..C8> [seed]` — emit an instance spec for a paper
/// configuration.
pub fn generate(config: &str, seed: Option<u64>) -> Result<String, String> {
    let cfg = PaperConfig::ALL
        .iter()
        .find(|c| c.name().eq_ignore_ascii_case(config))
        .copied()
        .ok_or_else(|| format!("unknown configuration '{config}' (C1..C8)"))?;
    let mut builder = WorkloadBuilder::paper(cfg);
    if let Some(s) = seed {
        builder = builder.seed(s);
    }
    let (w, _) = builder.build();
    Ok(format!(
        "# generated from paper configuration {} (4 apps x 16 threads, 8x8 mesh)\n{}",
        cfg.name(),
        spec_from_workload(&w, 8, 8).render()
    ))
}

fn report_block(spec: &InstanceSpec, inst: &ObmInstance, mapping: &Mapping) -> String {
    let r = evaluate(inst, mapping);
    let mut out = String::new();
    out.push_str("per-app APL (cycles):\n");
    for (name, apl) in spec.app_names().iter().zip(&r.per_app) {
        out.push_str(&format!("  {name:<20} {apl:.3}\n"));
    }
    out.push_str(&format!(
        "max-APL {:.3} | dev-APL {:.4} | g-APL {:.3}\n",
        r.max_apl, r.dev_apl, r.g_apl
    ));
    out
}

/// Extra report line for non-default objectives (the default min-max APL
/// is already the `max-APL` column, so repeating it would be noise).
fn objective_line(inst: &ObmInstance, mapping: &Mapping, objective: ObjectiveSpec) -> String {
    if objective.is_min_max_apl() {
        String::new()
    } else {
        format!(
            "objective {} = {:.6}\n",
            objective.name(),
            objective.score(inst, mapping)
        )
    }
}

fn mapping_grid(mesh: &Mesh, inst: &ObmInstance, mapping: &Mapping) -> String {
    let inv = mapping.tile_to_thread(inst.num_tiles());
    let mut out = String::new();
    for row in 0..mesh.rows() {
        for col in 0..mesh.cols() {
            let t = mesh.tile(noc_model::Coord::new(row, col));
            match inv[t.index()] {
                Some(j) => out.push_str(&format!("{:>3}", inst.app_of_thread(j) + 1)),
                None => out.push_str("  ."),
            }
        }
        out.push('\n');
    }
    out
}

/// `obm map` — compute a mapping for a spec, optionally optimized for a
/// non-default objective (`--objective`). The default `min-max-apl` runs
/// the mapper unmodified (bit-identical to the pre-objective CLI); other
/// objectives go through [`Mapper::map_objective`].
pub fn map_command(
    spec_text: &str,
    algo: &str,
    seed: u64,
    grid: bool,
    objective: &str,
    layout: LayoutFlags,
) -> Result<String, String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let objective: ObjectiveSpec = objective.parse()?;
    let (spec, chip) = layout.apply(spec)?;
    let inst = spec.to_instance_for_layout(&chip);
    let mapper = mapper_by_name(algo)?;
    let mapping = if objective.is_min_max_apl() {
        mapper.map(&inst, seed)
    } else {
        mapper.map_objective(&inst, seed, objective.build().as_ref())
    };
    let mut out = String::new();
    out.push_str(&format!("# algorithm: {}\n", mapper.name()));
    if !objective.is_min_max_apl() {
        out.push_str(&format!("# objective: {}\n", objective.name()));
    }
    out.push_str("# thread -> tile (paper 1-based numbering)\n");
    for j in 0..inst.num_threads() {
        out.push_str(&format!("{}\n", mapping.tile_of(j).to_paper()));
    }
    out.push('\n');
    if grid {
        out.push_str("application grid (1 = first declared app):\n");
        out.push_str(&mapping_grid(&spec.mesh(), &inst, &mapping));
        out.push('\n');
    }
    out.push_str(&report_block(&spec, &inst, &mapping));
    out.push_str(&objective_line(&inst, &mapping, objective));
    Ok(out)
}

/// `obm eval` — evaluate an existing mapping (one paper tile number per
/// line, thread order; '#' comments allowed). `--objective` appends that
/// objective's scalar next to the standard APL metrics.
pub fn eval_command(
    spec_text: &str,
    mapping_text: &str,
    objective: &str,
    layout: LayoutFlags,
) -> Result<String, String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let objective: ObjectiveSpec = objective.parse()?;
    let (spec, chip) = layout.apply(spec)?;
    let inst = spec.to_instance_for_layout(&chip);
    let tiles: Result<Vec<TileId>, String> = mapping_text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            let k: usize = l
                .parse()
                .map_err(|e| format!("bad tile number '{l}': {e}"))?;
            if k == 0 || k > inst.num_tiles() {
                return Err(format!("tile {k} out of range 1..={}", inst.num_tiles()));
            }
            Ok(TileId::from_paper(k))
        })
        .collect();
    let tiles = tiles?;
    if tiles.len() != inst.num_threads() {
        return Err(format!(
            "mapping has {} entries for {} threads",
            tiles.len(),
            inst.num_threads()
        ));
    }
    let mut seen = vec![false; inst.num_tiles()];
    for &t in &tiles {
        if seen[t.index()] {
            return Err(format!("tile {} assigned twice", t.to_paper()));
        }
        seen[t.index()] = true;
    }
    let mapping = Mapping::new(tiles);
    Ok(format!(
        "{}{}",
        report_block(&spec, &inst, &mapping),
        objective_line(&inst, &mapping, objective)
    ))
}

/// `obm simulate` — map and replay through the cycle-level simulator.
pub fn simulate_command(
    spec_text: &str,
    algo: &str,
    seed: u64,
    cycles: u64,
    layout: LayoutFlags,
    metrics: &MetricsHandle,
) -> Result<String, String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let (spec, chip) = layout.apply(spec)?;
    let inst = spec.to_instance_for_layout(&chip);
    let mapper = mapper_by_name(algo)?;
    let mapping = mapper.map(&inst, seed);
    let mut cfg = SimConfig::for_layout(&chip).map_err(|e| format!("invalid layout: {e}"))?;
    cfg.shards = noc_sim::env_shards().unwrap_or(1);
    cfg.warmup_cycles = (cycles / 10).max(100);
    cfg.measure_cycles = cycles;
    cfg.seed = seed ^ 0xC0FFEE;
    let traffic = obm_core::traffic_spec(&inst, &mapping);
    let report = Network::new(cfg, traffic)
        .map_err(|e| format!("invalid simulation config: {e}"))?
        .with_metrics(metrics.clone())
        .run();
    let analytic = evaluate(&inst, &mapping);
    let mut out = String::new();
    out.push_str(&format!(
        "algorithm {} | {} measured cycles\n",
        mapper.name(),
        cycles
    ));
    out.push_str("per-app APL, analytic vs simulated (cycles):\n");
    for (i, name) in spec.app_names().iter().enumerate() {
        out.push_str(&format!(
            "  {name:<20} {:>8.3} {:>8.3}\n",
            analytic.per_app[i],
            report.groups[i].apl()
        ));
    }
    out.push_str(&format!(
        "g-APL analytic {:.3} vs simulated {:.3} | td_q {:.3} cycles | {}/{} packets{}\n",
        analytic.g_apl,
        report.g_apl(),
        report.mean_td_q(),
        report.delivered,
        report.injected,
        if report.fully_drained {
            ""
        } else {
            " (undrained)"
        }
    ));
    Ok(out)
}

/// `obm experiments trace` — map and simulate a spec, emitting the full
/// telemetry stream as JSON lines (machine-readable): one `meta` header,
/// `solver` events from the mapping search, `window` records from the
/// simulation, and a final `summary` line.
pub fn trace_command(
    spec_text: &str,
    algo: &str,
    seed: u64,
    cycles: u64,
    window: u64,
    layout: LayoutFlags,
) -> Result<String, String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let (spec, chip) = layout.apply(spec)?;
    let inst = spec.to_instance_for_layout(&chip);
    let mapper = mapper_by_name(algo)?;
    let mesh = spec.mesh();
    let mut cfg = SimConfig::for_layout(&chip).map_err(|e| format!("invalid layout: {e}"))?;
    cfg.shards = noc_sim::env_shards().unwrap_or(1);
    cfg.warmup_cycles = (cycles / 10).max(100);
    cfg.measure_cycles = cycles;
    cfg.telemetry_window = window;
    cfg.seed = seed ^ 0xC0FFEE;
    cfg.validate()
        .map_err(|e| format!("invalid simulation config: {e}"))?;

    let mut sink = JsonLinesSink::new(Vec::new());
    sink.write_value(&Value::obj([
        ("type", Value::from("meta")),
        ("algo", Value::from(mapper.name())),
        ("seed", Value::from(seed)),
        ("mesh_rows", Value::from(mesh.rows())),
        ("mesh_cols", Value::from(mesh.cols())),
        ("warmup_cycles", Value::from(cfg.warmup_cycles)),
        ("measure_cycles", Value::from(cfg.measure_cycles)),
        ("telemetry_window", Value::from(cfg.telemetry_window)),
        ("threads", Value::from(inst.num_threads())),
        ("apps", Value::from(inst.num_apps())),
    ]));
    let mapping = mapper.map_probed(&inst, seed, &mut sink);
    let traffic = obm_core::traffic_spec(&inst, &mapping);
    let report = Network::new(cfg, traffic)
        .map_err(|e| format!("invalid simulation config: {e}"))?
        .run_probed(&mut sink);
    sink.write_value(&Value::obj([
        ("type", Value::from("summary")),
        ("cycles_run", Value::from(report.network.cycles_run)),
        ("injected", Value::from(report.injected)),
        ("delivered", Value::from(report.delivered)),
        ("fully_drained", Value::Bool(report.fully_drained)),
        ("g_apl", Value::from(report.g_apl())),
        ("max_apl", Value::from(report.max_apl())),
        ("mean_td_q", Value::from(report.mean_td_q())),
    ]));
    if let Some(e) = sink.error() {
        return Err(format!("telemetry write failed: {e}"));
    }
    let bytes = sink.finish().map_err(|e| format!("flush failed: {e}"))?;
    String::from_utf8(bytes).map_err(|e| format!("non-UTF-8 telemetry: {e}"))
}

/// Port letter for the heatmap's hottest-links table.
fn port_letter(port: usize) -> char {
    match port {
        PORT_NORTH => 'N',
        PORT_SOUTH => 'S',
        PORT_WEST => 'W',
        PORT_EAST => 'E',
        _ => '?',
    }
}

/// One decomposition row of the heatmap report's latency table.
fn decomposition_row(label: &str, a: &FlowAccum) -> String {
    let q = |q: f64| {
        a.histogram
            .quantile(q)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_string())
    };
    format!(
        "  {label:<8} {:>8} {:>9.3} {:>6} {:>6} {:>6} {:>6} {:>8.3} {:>8.3} {:>8.3}\n",
        a.packets,
        a.histogram.mean(),
        q(0.5),
        q(0.95),
        q(0.99),
        a.histogram
            .max()
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_string()),
        a.mean_source_queue(),
        a.mean_in_network(),
        a.mean_serialization(),
    )
}

/// `obm experiments heatmap` — map a spec, simulate it under a probe and
/// render the end-of-run spatial state: per-link flit traversals as an
/// ASCII mesh with a hottest-links table and per-router stall totals, or
/// (with `--json`) one deterministic JSON object carrying the full
/// [`HeatmapRecord`] and flow decomposition next to the report's
/// `link_flit_traversals`, so consumers can arithmetic-check the link
/// conservation law.
pub fn heatmap_command(
    spec_text: &str,
    algo: &str,
    seed: u64,
    cycles: u64,
    json: bool,
    layout: LayoutFlags,
) -> Result<String, String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let (spec, chip) = layout.apply(spec)?;
    let inst = spec.to_instance_for_layout(&chip);
    let mapper = mapper_by_name(algo)?;
    let mapping = mapper.map(&inst, seed);
    let mut cfg = SimConfig::for_layout(&chip).map_err(|e| format!("invalid layout: {e}"))?;
    cfg.shards = noc_sim::env_shards().unwrap_or(1);
    cfg.warmup_cycles = (cycles / 10).max(100);
    cfg.measure_cycles = cycles;
    cfg.seed = seed ^ 0xC0FFEE;
    let traffic = obm_core::traffic_spec(&inst, &mapping);
    let mut sink = RingSink::new(4096);
    let report = Network::new(cfg, traffic)
        .map_err(|e| format!("invalid simulation config: {e}"))?
        .run_probed(&mut sink);
    let heat = sink
        .heatmaps()
        .next()
        .cloned()
        .ok_or("probed run produced no heatmap record")?;
    let flow = sink
        .flow_summaries()
        .next()
        .cloned()
        .ok_or("probed run produced no flow summary")?;

    if json {
        return Ok(Value::obj([
            ("type", Value::from("heatmap_report")),
            ("algo", Value::from(mapper.name())),
            ("seed", Value::from(seed)),
            ("measure_cycles", Value::from(cycles)),
            ("cycles_run", Value::from(report.network.cycles_run)),
            (
                "link_flit_traversals",
                Value::from(report.network.link_flit_traversals),
            ),
            ("heatmap", heat.to_json()),
            ("flow", flow.to_json()),
        ])
        .to_string());
    }

    let mut out = String::new();
    out.push_str(&format!(
        "algorithm {} | seed {} | {}x{} mesh | {} measured cycles ({} total)\n\n",
        mapper.name(),
        seed,
        heat.rows,
        heat.cols,
        cycles,
        report.network.cycles_run
    ));
    out.push_str("link heatmap (decile digits, 9 = hottest link, . = idle):\n");
    out.push_str(&heat.ascii_mesh());
    out.push('\n');

    let mut links: Vec<_> = heat.links().collect();
    links.sort_by(|a, b| {
        b.flits
            .cmp(&a.flits)
            .then(a.tile.cmp(&b.tile))
            .then(a.port.cmp(&b.port))
    });
    out.push_str("hottest links (flits over all phases):\n");
    for l in links.iter().take(5).filter(|l| l.flits > 0) {
        out.push_str(&format!(
            "  ({},{}) -{}-> ({},{})  {:>10}\n",
            l.tile / heat.cols,
            l.tile % heat.cols,
            port_letter(l.port),
            l.to / heat.cols,
            l.to % heat.cols,
            l.flits
        ));
    }
    let credit: u64 = heat.credit_stalls.iter().sum();
    let vc: u64 = heat.vc_stalls.iter().sum();
    let switch: u64 = heat.switch_stalls.iter().sum();
    out.push_str(&format!(
        "stall cycles: credit {credit} | vc-alloc {vc} | switch-skip {switch}\n\n"
    ));
    out.push_str(
        "latency decomposition (measured packets, cycles):\n  \
         class     packets      mean    p50    p95    p99    max    src-q      net      ser\n",
    );
    out.push_str(&decomposition_row("cache", &flow.cache));
    out.push_str(&decomposition_row("memory", &flow.memory));
    let names = spec.app_names();
    for (g, a) in flow.groups.iter().enumerate() {
        out.push_str(&decomposition_row(
            names.get(g).copied().unwrap_or("app"),
            a,
        ));
    }
    Ok(out)
}

/// Captures per-packet lifecycle records and windows for Chrome-trace
/// export. Opting into packets is what makes the simulator stream one
/// [`PacketRecord`] per delivery.
#[derive(Default)]
struct ChromeCapture {
    packets: Vec<PacketRecord>,
    windows: Vec<WindowRecord>,
}

impl Sink for ChromeCapture {
    fn record(&mut self, record: &Record) {
        match record {
            Record::Packet(p) => self.packets.push(*p),
            Record::Window(w) => self.windows.push(w.clone()),
            _ => {}
        }
    }

    fn wants_packets(&self) -> bool {
        true
    }
}

/// `obm experiments trace --chrome` — simulate a spec and emit a
/// Chrome-trace/Perfetto JSON object (`{"traceEvents": [...]}`).
/// Timestamps and durations are simulated cycles (one "microsecond" per
/// cycle in the viewer). Each delivered packet becomes one complete
/// (`"X"`) event on track `pid = application group`, `tid = source tile`,
/// with the DESIGN.md §12 decomposition in `args`; per-window occupancy
/// becomes counter (`"C"`) events.
pub fn chrome_trace_command(
    spec_text: &str,
    algo: &str,
    seed: u64,
    cycles: u64,
    window: u64,
    layout: LayoutFlags,
) -> Result<String, String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let (spec, chip) = layout.apply(spec)?;
    let inst = spec.to_instance_for_layout(&chip);
    let mapper = mapper_by_name(algo)?;
    let mapping = mapper.map(&inst, seed);
    let mut cfg = SimConfig::for_layout(&chip).map_err(|e| format!("invalid layout: {e}"))?;
    cfg.shards = noc_sim::env_shards().unwrap_or(1);
    cfg.warmup_cycles = (cycles / 10).max(100);
    cfg.measure_cycles = cycles;
    cfg.telemetry_window = window;
    cfg.seed = seed ^ 0xC0FFEE;
    let traffic = obm_core::traffic_spec(&inst, &mapping);
    let mut cap = ChromeCapture::default();
    let report = Network::new(cfg, traffic)
        .map_err(|e| format!("invalid simulation config: {e}"))?
        .run_probed(&mut cap);

    let mut events = Vec::new();
    for (g, name) in spec.app_names().iter().enumerate() {
        events.push(Value::obj([
            ("name", Value::from("process_name")),
            ("ph", Value::from("M")),
            ("pid", Value::from(g)),
            (
                "args",
                Value::obj([("name", Value::Str(format!("app {}: {name}", g + 1)))]),
            ),
        ]));
    }
    for p in &cap.packets {
        events.push(Value::obj([
            (
                "name",
                Value::from(if p.cache { "cache" } else { "memory" }),
            ),
            ("ph", Value::from("X")),
            ("ts", Value::from(p.enqueue_cycle)),
            ("dur", Value::from(p.latency())),
            ("pid", Value::from(p.group)),
            ("tid", Value::from(p.src)),
            (
                "args",
                Value::obj([
                    ("dst", Value::from(p.dst)),
                    ("hops", Value::from(p.hops as u64)),
                    ("flits", Value::from(p.flits as u64)),
                    ("source_queue", Value::from(p.source_queue())),
                    ("in_network", Value::from(p.in_network())),
                    ("serialization", Value::from(p.serialization())),
                    ("measured", Value::Bool(p.measured)),
                ]),
            ),
        ]));
    }
    for w in &cap.windows {
        events.push(Value::obj([
            ("name", Value::from("network occupancy")),
            ("ph", Value::from("C")),
            ("ts", Value::from(w.start_cycle)),
            ("pid", Value::from(0u64)),
            (
                "args",
                Value::obj([
                    ("buffered_flits", Value::from(w.buffered_flits)),
                    ("live_packets", Value::from(w.live_packets)),
                ]),
            ),
        ]));
    }
    Ok(Value::obj([
        ("traceEvents", Value::Arr(events)),
        ("displayTimeUnit", Value::from("ms")),
        (
            "metadata",
            Value::obj([
                ("algo", Value::from(mapper.name())),
                ("seed", Value::from(seed)),
                ("measure_cycles", Value::from(cycles)),
                ("cycles_run", Value::from(report.network.cycles_run)),
                ("injected", Value::from(report.injected)),
                ("delivered", Value::from(report.delivered)),
                ("fully_drained", Value::Bool(report.fully_drained)),
            ]),
        ),
    ])
    .to_string())
}

/// `obm exact` — prove the optimal max-APL with branch-and-bound (small
/// instances; the node budget bounds the proof effort).
pub fn exact_command(spec_text: &str, node_budget: u64) -> Result<String, String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let inst = spec.to_instance();
    if inst.num_threads() > 20 {
        return Err(format!(
            "{} threads is beyond practical exact solving (≤ 20)",
            inst.num_threads()
        ));
    }
    let solver = BranchAndBound {
        node_budget: node_budget.max(1),
    };
    let r = solver.solve_budgeted(&inst, &obm_core::CancelToken::never(), None);
    let sss = obm_core::evaluate(&inst, &SortSelectSwap::default().map(&inst, 0)).max_apl;
    let mut out = String::new();
    out.push_str(&format!(
        "{} after {} nodes: objective {:.6}
",
        if r.proven_optimal {
            "PROVEN OPTIMAL"
        } else {
            "budget exhausted (best incumbent)"
        },
        r.nodes,
        r.objective
    ));
    out.push_str(&format!(
        "SSS heuristic: {:.6} ({:+.3}% vs {})
",
        sss,
        (sss / r.objective - 1.0) * 100.0,
        if r.proven_optimal {
            "optimum"
        } else {
            "incumbent"
        }
    ));
    out.push_str(
        "# thread -> tile (paper numbering)
",
    );
    for j in 0..inst.num_threads() {
        out.push_str(&format!(
            "{}
",
            r.mapping.tile_of(j).to_paper()
        ));
    }
    Ok(out)
}

/// Flags for `obm solve` (bundled so the command keeps a readable
/// signature).
pub struct SolveArgs<'a> {
    /// Comma-separated line-up (`sss,sa,hybrid,greedy,mc,exact`) or
    /// `portfolio` for the default five-algorithm race.
    pub algos: &'a str,
    /// Comma-separated seed list.
    pub seeds: &'a str,
    pub deadline_ms: Option<u64>,
    pub max_evals: Option<u64>,
    pub workers: Option<usize>,
    pub aggressive: bool,
    /// Objective name (`min-max-apl`, `max-min-balance`, `energy`).
    pub objective: &'a str,
    /// Contents of a `--resume` checkpoint file, if given.
    pub resume_json: Option<&'a str>,
    /// `--topology`/`--mcs` overrides.
    pub layout: LayoutFlags<'a>,
    /// `--metrics` registry handle (disabled when the flag is absent; the
    /// command then opens a private registry so the printed parallelism
    /// and throughput figures are still registry-backed).
    pub metrics: MetricsHandle,
}

fn portfolio_algorithms(names: &str) -> Result<Vec<Algorithm>, String> {
    if names == "portfolio" {
        return Ok(Algorithm::default_portfolio());
    }
    names
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| {
            Ok(match name {
                "sss" => Algorithm::SortSelectSwap(SortSelectSwap::default()),
                "sa" => Algorithm::SimulatedAnnealing(SimulatedAnnealing::default()),
                "hybrid" => Algorithm::HybridSssSa(HybridSssSa::default()),
                "greedy" => Algorithm::BalancedGreedy,
                // Single-worker MC: the portfolio owns the parallelism.
                "mc" => Algorithm::MonteCarlo(MonteCarlo {
                    samples: 10_000,
                    workers: 1,
                }),
                "exact" => Algorithm::Exact(BranchAndBound::default()),
                other => {
                    return Err(format!(
                        "unknown portfolio algorithm '{other}' \
                         (try sss, sa, hybrid, greedy, mc, exact, or portfolio)"
                    ))
                }
            })
        })
        .collect()
}

fn parse_seed_list(text: &str) -> Result<Vec<u64>, String> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<u64>().map_err(|e| format!("bad seed '{s}': {e}")))
        .collect()
}

/// `obm solve` — race a solver portfolio under a budget. Returns the
/// human-readable report and the run's checkpoint JSON (written to disk
/// by `main` when `--checkpoint` is given).
pub fn solve_command(spec_text: &str, args: &SolveArgs) -> Result<(String, String), String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let (spec, chip) = args.layout.apply(spec)?;
    let inst = spec.to_instance_for_layout(&chip);
    let algorithms = portfolio_algorithms(args.algos)?;
    let seeds = parse_seed_list(args.seeds)?;
    let objective: ObjectiveSpec = args.objective.parse()?;

    // Registry-backed reporting: with no `--metrics` flag the passed
    // handle is disabled, so open a private registry — the parallelism
    // and throughput lines below read their figures back from gauges
    // either way, keeping report and snapshot in lockstep.
    let metrics = if args.metrics.enabled() {
        args.metrics.clone()
    } else {
        MetricsRegistry::new().handle()
    };

    let mut builder = SolveRequest::builder(&inst)
        .algorithms(algorithms)
        .seeds(seeds)
        .objective(objective)
        .metrics(metrics.clone())
        .aggressive_pruning(args.aggressive);
    if let Some(ms) = args.deadline_ms {
        builder = builder.deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(evals) = args.max_evals {
        builder = builder.max_evaluations(evals);
    }
    if let Some(w) = args.workers {
        builder = builder.workers(w);
    }
    if let Some(text) = args.resume_json {
        let cp = Checkpoint::from_json(text).map_err(|e| e.to_string())?;
        builder = builder.resume(cp);
    }
    let request = builder.build().map_err(|e| e.to_string())?;
    let workers = request.workers();
    let outcome = request.solve();

    // Fold the ad-hoc parallelism figures into registry gauges
    // (DESIGN.md §17): publish first, then read back for the printout,
    // so the report and an exported snapshot can never disagree. The
    // engine has already set `portfolio_workers` during the race.
    metrics.gauge_set(
        "cli_detected_cores",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1) as f64,
    );
    metrics.gauge_set("sim_shards_env", noc_sim::env_shards().unwrap_or(1) as f64);
    let gauge = |name: &str| metrics.gauge_value(name).unwrap_or(0.0);

    let mut out = String::new();
    out.push_str(&format!(
        "portfolio: {} task(s) across {} worker(s) | termination: {}\n",
        outcome.stats.len(),
        workers,
        outcome.termination
    ));
    // Effective parallelism, so solve logs record what actually ran:
    // configured workers vs detected cores, and the simulator shard knob
    // (bit-identical to serial; consumed by `obm simulate`/`trace`).
    out.push_str(&format!(
        "parallelism: {} configured worker(s) on {} detected core(s); \
         sim shards: {} (OBM_SIM_SHARDS)\n",
        gauge("portfolio_workers") as usize,
        gauge("cli_detected_cores") as usize,
        gauge("sim_shards_env") as usize,
    ));
    out.push_str(&format!(
        "throughput: {:.0} eval(s)/s aggregate over timed tasks (portfolio_evals_per_sec)\n",
        gauge("portfolio_evals_per_sec"),
    ));
    if outcome.resume_rejected {
        out.push_str("note: --resume checkpoint did not match this request; all tasks re-ran\n");
    }
    out.push_str(&format!(
        "winner: {} (seed {}) {} {:.6}{}\n",
        outcome.winner,
        outcome.winner_seed,
        if objective.is_min_max_apl() {
            "max-APL".to_string()
        } else {
            objective.name().to_string()
        },
        outcome.objective,
        if outcome.fallback {
            " [fallback: no task finished]"
        } else {
            ""
        }
    ));
    out.push_str("  task  algo     seed        evals      evals/s   objective\n");
    for s in &outcome.stats {
        out.push_str(&format!(
            "  {:>4}  {:<7} {:>5} {:>12} {:>12}   {}\n",
            s.task,
            s.algo,
            s.seed,
            s.evaluations,
            match s.evals_per_sec {
                Some(r) => format!("{r:.0}"),
                None => "-".to_string(),
            },
            match s.objective {
                Some(v) if s.resumed => format!("{v:.6} (resumed)"),
                Some(v) => format!("{v:.6}"),
                None => "-".to_string(),
            }
        ));
    }
    out.push_str("# thread -> tile (paper numbering)\n");
    for j in 0..inst.num_threads() {
        out.push_str(&format!("{}\n", outcome.mapping.tile_of(j).to_paper()));
    }
    out.push_str(&report_block(&spec, &inst, &outcome.mapping));
    out.push_str(&objective_line(&inst, &outcome.mapping, objective));
    Ok((out, outcome.checkpoint.to_json()))
}

/// Flags for `obm place` (placement co-optimization).
pub struct PlaceArgs<'a> {
    /// Number of memory controllers to place (`--controllers K`).
    pub controllers: usize,
    /// `--topology mesh|torus`.
    pub topology: &'a str,
    /// `--exhaustive` forces full canonical enumeration.
    pub exhaustive: bool,
    /// `--annealed N` forces simulated annealing over placements.
    pub annealed: Option<usize>,
    /// Outer-search seed (also seeds the inner solver).
    pub seed: u64,
    /// `--portfolio`: race the default solver portfolio on every
    /// candidate layout instead of single sort-select-swap.
    pub portfolio: bool,
    /// Worker threads for `--portfolio`.
    pub workers: Option<usize>,
    /// `--grid`: render the best mapping as an application grid.
    pub grid: bool,
    /// `--metrics` registry handle (disabled when the flag is absent).
    pub metrics: MetricsHandle,
}

fn controller_list(layout: &ChipLayout) -> String {
    let list: Vec<String> = layout
        .controllers()
        .tiles()
        .iter()
        .map(|t| t.to_paper().to_string())
        .collect();
    list.join(" ")
}

/// `obm place` — co-optimize memory-controller placement and thread
/// mapping: a deterministic outer search over symmetry-reduced controller
/// placements (exhaustive when small, simulated annealing otherwise) with
/// an OBM solver in the inner loop. Reports the corner-default baseline
/// next to the best layout found, plus the inner mapping for it.
pub fn place_command(spec_text: &str, args: &PlaceArgs) -> Result<String, String> {
    let spec = InstanceSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let inst = spec.to_instance();
    let mesh = spec.mesh();

    let mut opts = PlacementOptions::new(args.controllers);
    opts.topology = args
        .topology
        .parse()
        .map_err(|e| format!("--topology: {e}"))?;
    opts.seed = args.seed;
    opts.inner_seed = args.seed;
    opts.metrics = args.metrics.clone();
    if args.exhaustive && args.annealed.is_some() {
        return Err("--exhaustive and --annealed are mutually exclusive".to_string());
    }
    if args.exhaustive {
        opts.mode = SearchMode::Exhaustive;
    } else if let Some(iterations) = args.annealed {
        if iterations == 0 {
            return Err("--annealed needs at least one iteration".to_string());
        }
        opts.mode = SearchMode::Annealed { iterations };
    }

    let outcome = if args.portfolio {
        let inner = obm_portfolio::portfolio_inner(
            Algorithm::default_portfolio(),
            args.workers.unwrap_or(4),
            SolveBudget::unlimited(),
        );
        obm_core::co_optimize(&inst, &mesh, &opts, inner)
    } else {
        obm_core::co_optimize(&inst, &mesh, &opts, obm_core::sss_inner)
    }
    .map_err(|e| e.to_string())?;

    let mut out = String::new();
    out.push_str(&format!(
        "placement search: {} controller(s) | topology {} | inner {} | {} layout(s) scored ({})\n",
        args.controllers,
        outcome.layout.topology(),
        if args.portfolio { "portfolio" } else { "sss" },
        outcome.evaluated,
        if outcome.exhaustive {
            "exhaustive over canonical placements"
        } else {
            "annealed"
        }
    ));
    out.push_str(&format!(
        "baseline (corner-default)  tiles {:<16} max-APL {:.4}\n",
        controller_list(&outcome.baseline_layout),
        outcome.baseline_objective
    ));
    out.push_str(&format!(
        "best found                 tiles {:<16} max-APL {:.4}  (gain {:.2}%)\n\n",
        controller_list(&outcome.layout),
        outcome.objective,
        outcome.gain_pct()
    ));
    out.push_str("# thread -> tile (paper 1-based numbering)\n");
    for j in 0..inst.num_threads() {
        out.push_str(&format!("{}\n", outcome.mapping.tile_of(j).to_paper()));
    }
    out.push('\n');
    let best_inst = spec.to_instance_for_layout(&outcome.layout);
    if args.grid {
        out.push_str("application grid (1 = first declared app):\n");
        out.push_str(&mapping_grid(&mesh, &best_inst, &outcome.mapping));
        out.push('\n');
    }
    out.push_str(&report_block(&spec, &best_inst, &outcome.mapping));
    Ok(out)
}

/// `obm latency` — print the TC/TM arrays for a chip.
pub fn latency_command(n: usize, controllers: &str) -> Result<String, String> {
    let mesh = Mesh::square(n);
    let mcs = match controllers {
        "corners" => MemoryControllers::corners(&mesh),
        "edges" => MemoryControllers::edge_centers(&mesh),
        other => return Err(format!("unknown controller placement '{other}'")),
    };
    let tl = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    let mut out = String::new();
    out.push_str(&format!("TC(k) — average cache latency, {n}x{n} mesh:\n"));
    for row in 0..n {
        for col in 0..n {
            out.push_str(&format!(
                "{:>7.2}",
                tl.tc(mesh.tile(noc_model::Coord::new(row, col)))
            ));
        }
        out.push('\n');
    }
    out.push_str("TM(k) — average memory latency:\n");
    for row in 0..n {
        for col in 0..n {
            out.push_str(&format!(
                "{:>7.2}",
                tl.tm(mesh.tile(noc_model::Coord::new(row, col)))
            ));
        }
        out.push('\n');
    }
    Ok(out)
}

/// `obm status <snapshot>...` — parse one or more exported metrics
/// snapshots (Prometheus text or JSON lines, sniffed per file), merge
/// them (counters/histograms sum, gauges last-wins in argument order)
/// and render the ASCII dashboard.
pub fn status_command(paths: &[String]) -> Result<String, String> {
    if paths.is_empty() {
        return Err("status needs at least one metrics snapshot file".to_string());
    }
    let mut merged = MetricsSnapshot::default();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let snap = MetricsSnapshot::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        merged.merge(&snap);
    }
    Ok(merged.render_dashboard(paths.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = "\
mesh 4 4
app light 4
thread 1.0 0.15
thread 1.2 0.18
thread 0.8 0.12
thread 1.1 0.16
app heavy 4
thread 8.0 1.2
thread 9.0 1.4
thread 7.0 1.0
thread 8.5 1.3
";

    #[test]
    fn gen_produces_parseable_spec() {
        let out = generate("C1", Some(3)).unwrap();
        let spec = InstanceSpec::parse(&out).unwrap();
        assert_eq!(spec.apps.len(), 4);
        assert_eq!(spec.apps.iter().map(|a| a.threads.len()).sum::<usize>(), 64);
    }

    #[test]
    fn gen_rejects_unknown_config() {
        assert!(generate("C9", None).is_err());
    }

    #[test]
    fn map_then_eval_roundtrip() {
        let mapped =
            map_command(SPEC, "sss", 0, false, "min-max-apl", LayoutFlags::default()).unwrap();
        // Extract the tile list (non-comment numeric lines before the blank).
        let tiles: Vec<&str> = mapped
            .lines()
            .take_while(|l| !l.is_empty())
            .filter(|l| !l.starts_with('#'))
            .collect();
        assert_eq!(tiles.len(), 8);
        let eval_out =
            eval_command(SPEC, &tiles.join("\n"), "apl", LayoutFlags::default()).unwrap();
        assert!(eval_out.contains("max-APL"));
        // Evaluated metrics must equal the mapper's own report.
        let metrics_line = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("max-APL"))
                .map(str::to_string)
                .expect("metrics line")
        };
        assert_eq!(metrics_line(&mapped), metrics_line(&eval_out));
    }

    #[test]
    fn eval_rejects_bad_mappings() {
        assert!(eval_command(
            SPEC,
            "1\n1\n2\n3\n4\n5\n6\n7\n",
            "apl",
            LayoutFlags::default()
        )
        .is_err()); // dup
        assert!(eval_command(SPEC, "1\n2\n3\n", "apl", LayoutFlags::default()).is_err()); // too few
        assert!(eval_command(
            SPEC,
            "0\n2\n3\n4\n5\n6\n7\n8\n",
            "apl",
            LayoutFlags::default()
        )
        .is_err()); // 0 invalid
        assert!(eval_command(
            SPEC,
            "99\n2\n3\n4\n5\n6\n7\n8\n",
            "apl",
            LayoutFlags::default()
        )
        .is_err());
        // range
    }

    #[test]
    fn map_grid_output() {
        let out = map_command(SPEC, "greedy", 0, true, "apl", LayoutFlags::default()).unwrap();
        assert!(out.contains("application grid"));
        assert!(out.contains("  .") || out.contains("  1"), "{out}");
    }

    #[test]
    fn unknown_algo_rejected() {
        assert!(map_command(SPEC, "quantum", 0, false, "apl", LayoutFlags::default()).is_err());
    }

    #[test]
    fn objective_flag_changes_the_report() {
        // Unknown objectives are rejected up front.
        assert!(map_command(SPEC, "sss", 0, false, "entropy", LayoutFlags::default()).is_err());
        assert!(eval_command(
            SPEC,
            "1\n2\n3\n4\n5\n6\n7\n8\n",
            "entropy",
            LayoutFlags::default()
        )
        .is_err());

        // The default spelling produces no extra line (bit-identical to
        // the pre-objective CLI)...
        let default_out =
            map_command(SPEC, "sss", 0, false, "min-max-apl", LayoutFlags::default()).unwrap();
        assert!(!default_out.contains("objective "));

        // ...while a non-default objective annotates the mapping and
        // appends its scalar, and the mapping still evaluates cleanly.
        let out = map_command(
            SPEC,
            "sss",
            0,
            false,
            "max-min-balance",
            LayoutFlags::default(),
        )
        .unwrap();
        assert!(out.contains("# objective: max-min-balance"), "{out}");
        assert!(out.contains("objective max-min-balance = "), "{out}");
        let tiles: Vec<&str> = out
            .lines()
            .skip_while(|l| l.starts_with('#'))
            .take_while(|l| !l.is_empty())
            .filter(|l| !l.starts_with('#'))
            .collect();
        assert_eq!(tiles.len(), 8);
        let eval_out =
            eval_command(SPEC, &tiles.join("\n"), "energy", LayoutFlags::default()).unwrap();
        assert!(eval_out.contains("objective energy = "), "{eval_out}");
    }

    #[test]
    fn simulate_small() {
        let out = simulate_command(
            SPEC,
            "sss",
            1,
            5_000,
            LayoutFlags::default(),
            &MetricsHandle::disabled(),
        )
        .unwrap();
        assert!(out.contains("simulated"), "{out}");
        assert!(!out.contains("undrained"), "{out}");
    }

    #[test]
    fn trace_emits_parseable_windowed_series() {
        use noc_sim::telemetry::json;

        let cycles = 4_000u64;
        let window = 500u64;
        let out = trace_command(SPEC, "sss", 1, cycles, window, LayoutFlags::default()).unwrap();
        let values: Vec<json::Value> = out
            .lines()
            .map(|l| json::parse(l).expect("every line is valid JSON"))
            .collect();
        assert!(values.len() >= 3);

        // Header carries the run geometry.
        let meta = &values[0];
        assert_eq!(meta.get("type").and_then(|v| v.as_str()), Some("meta"));
        let measure_cycles = meta.get("measure_cycles").and_then(|v| v.as_u64()).unwrap();
        assert_eq!(measure_cycles, cycles);

        // Summary closes the stream.
        let summary = values.last().unwrap();
        assert_eq!(
            summary.get("type").and_then(|v| v.as_str()),
            Some("summary")
        );
        let cycles_run = summary.get("cycles_run").and_then(|v| v.as_u64()).unwrap();
        let injected = summary.get("injected").and_then(|v| v.as_u64()).unwrap();
        assert!(injected > 0);

        // The SSS search must have contributed solver events.
        assert!(
            values
                .iter()
                .any(|v| v.get("type").and_then(|x| x.as_str()) == Some("solver")),
            "no solver events in trace"
        );

        // Windowed series: every window line exposes the four series
        // (injection rate, buffered flits, per-class mean latency, live
        // packets); widths tile the run and rates stay in sane bounds.
        let windows: Vec<&json::Value> = values
            .iter()
            .filter(|v| v.get("type").and_then(|x| x.as_str()) == Some("window"))
            .collect();
        assert!(!windows.is_empty(), "no window records in trace");
        let mut covered = 0u64;
        let mut measure_width = 0u64;
        for w in &windows {
            let start = w.get("start_cycle").and_then(|v| v.as_u64()).unwrap();
            let end = w.get("end_cycle").and_then(|v| v.as_u64()).unwrap();
            assert!(end > start, "empty window");
            assert_eq!(start, covered, "windows must tile the run");
            covered = end;
            let inj_rate = w.get("injection_rate").and_then(|v| v.as_f64()).unwrap();
            assert!((0.0..=100.0).contains(&inj_rate), "inj rate {inj_rate}");
            let ej_rate = w.get("ejection_rate").and_then(|v| v.as_f64()).unwrap();
            assert!((0.0..=100.0).contains(&ej_rate), "ej rate {ej_rate}");
            assert!(w.get("buffered_flits").and_then(|v| v.as_u64()).is_some());
            assert!(w.get("live_packets").and_then(|v| v.as_u64()).is_some());
            let cache_mean = w
                .get("cache")
                .and_then(|c| c.get("mean_latency"))
                .and_then(|v| v.as_f64())
                .unwrap();
            assert!(cache_mean >= 0.0);
            if w.get("phase").and_then(|v| v.as_str()) == Some("measure") {
                measure_width += end - start;
            }
        }
        assert_eq!(covered, cycles_run, "windows must cover the whole run");
        assert_eq!(
            measure_width, cycles,
            "measure-phase window widths must sum to the measured cycles"
        );

        // Windowed injection totals must reconcile with the summary (the
        // windows count warmup+drain too, so they bound it from above).
        let win_injected: u64 = windows
            .iter()
            .map(|w| w.get("injected_packets").and_then(|v| v.as_u64()).unwrap())
            .sum();
        assert!(win_injected >= injected);
    }

    #[test]
    fn heatmap_json_is_deterministic_and_conserves_flits() {
        use noc_sim::telemetry::json;

        let a = heatmap_command(SPEC, "sss", 1, 3_000, true, LayoutFlags::default()).unwrap();
        let b = heatmap_command(SPEC, "sss", 1, 3_000, true, LayoutFlags::default()).unwrap();
        assert_eq!(a, b, "same seed must give byte-identical heatmap JSON");

        let v = json::parse(&a).unwrap();
        let report_flits = v
            .get("link_flit_traversals")
            .and_then(Value::as_u64)
            .unwrap();
        let heat = v.get("heatmap").unwrap();
        let heat_total = heat
            .get("total_link_flits")
            .and_then(Value::as_u64)
            .unwrap();
        assert_eq!(heat_total, report_flits, "link conservation law");
        let link_sum: u64 = heat
            .get("links")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|l| l.get("flits").and_then(Value::as_u64).unwrap())
            .sum();
        assert_eq!(link_sum, report_flits);
        assert!(report_flits > 0, "run must move traffic");
        // 4x4 mesh: 2*(4*3 + 4*3) = 48 directed links.
        assert_eq!(heat.get("links").and_then(Value::as_arr).unwrap().len(), 48);
    }

    #[test]
    fn heatmap_ascii_renders_mesh_and_decomposition() {
        let out = heatmap_command(SPEC, "sss", 1, 3_000, false, LayoutFlags::default()).unwrap();
        assert!(out.contains("link heatmap"), "{out}");
        assert!(out.contains("o-"), "{out}");
        assert!(out.contains("hottest links"), "{out}");
        assert!(out.contains("stall cycles:"), "{out}");
        assert!(out.contains("latency decomposition"), "{out}");
        assert!(out.contains("cache"), "{out}");
        assert!(out.contains("memory"), "{out}");
        // Both declared apps appear as decomposition rows.
        assert!(out.contains("light"), "{out}");
        assert!(out.contains("heavy"), "{out}");
    }

    #[test]
    fn chrome_trace_events_satisfy_decomposition_identity() {
        use noc_sim::telemetry::json;

        let out = chrome_trace_command(SPEC, "sss", 1, 3_000, 500, LayoutFlags::default()).unwrap();
        let v = json::parse(&out).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert!(!events.is_empty());

        // One process-name metadata event per application.
        let metas: Vec<&json::Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);

        let packets: Vec<&json::Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert!(!packets.is_empty(), "no packet events in chrome trace");
        for e in &packets {
            let dur = e.get("dur").and_then(Value::as_u64).unwrap();
            let args = e.get("args").unwrap();
            let src_q = args.get("source_queue").and_then(Value::as_u64).unwrap();
            let net = args.get("in_network").and_then(Value::as_u64).unwrap();
            let ser = args.get("serialization").and_then(Value::as_u64).unwrap();
            assert_eq!(
                src_q + net + ser,
                dur,
                "decomposition identity must hold per event"
            );
        }
        // Delivered count in the metadata reconciles with the summary:
        // measured packet events can't exceed it.
        let delivered = v
            .get("metadata")
            .and_then(|m| m.get("delivered"))
            .and_then(Value::as_u64)
            .unwrap();
        let measured = packets
            .iter()
            .filter(|e| {
                e.get("args")
                    .and_then(|a| a.get("measured"))
                    .map(|m| matches!(m, Value::Bool(true)))
                    .unwrap_or(false)
            })
            .count() as u64;
        assert_eq!(measured, delivered, "one X event per measured delivery");

        // Counter events track window occupancy.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("C")));
    }

    #[test]
    fn exact_small_spec() {
        let spec = "\
mesh 2 2
app a 2
thread 1.0 0.1
thread 3.0 0.4
app b 2
thread 2.0 0.2
thread 5.0 0.7
";
        let out = exact_command(spec, 1_000_000).unwrap();
        assert!(out.contains("PROVEN OPTIMAL"), "{out}");
        assert!(out.contains("SSS heuristic"));
    }

    #[test]
    fn exact_rejects_large_instances() {
        let out = generate("C1", Some(1)).unwrap();
        assert!(exact_command(&out, 1000).is_err());
    }

    fn quick_solve_args<'a>(algos: &'a str, resume: Option<&'a str>) -> SolveArgs<'a> {
        SolveArgs {
            algos,
            seeds: "1,2",
            deadline_ms: None,
            // Keep the default SA/MC line-ups cheap in tests.
            max_evals: Some(30_000),
            workers: Some(2),
            aggressive: false,
            objective: "min-max-apl",
            resume_json: resume,
            layout: LayoutFlags::default(),
            metrics: MetricsHandle::disabled(),
        }
    }

    #[test]
    fn solve_races_portfolio_and_reports_stats() {
        let (out, checkpoint) =
            solve_command(SPEC, &quick_solve_args("sss,greedy,mc", None)).expect("solve succeeds");
        assert!(out.contains("winner:"), "{out}");
        assert!(out.contains("max-APL"), "{out}");
        // sss and greedy dedup to one task each; mc gets both seeds.
        assert!(out.contains("portfolio: 4 task(s)"), "{out}");
        // The checkpoint round-trips through the portfolio parser.
        let cp = obm_portfolio::Checkpoint::from_json(&checkpoint).expect("valid checkpoint");
        assert!(!cp.completed.is_empty());
    }

    #[test]
    fn solve_resumes_from_its_own_checkpoint() {
        let (first, checkpoint) =
            solve_command(SPEC, &quick_solve_args("sss,mc", None)).expect("first solve");
        let (second, _) = solve_command(SPEC, &quick_solve_args("sss,mc", Some(&checkpoint)))
            .expect("resumed solve");
        assert!(second.contains("(resumed)"), "{second}");
        let metric = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("winner:"))
                .map(str::to_string)
        };
        assert_eq!(metric(&first), metric(&second));
    }

    #[test]
    fn solve_rejects_bad_configuration_with_readable_errors() {
        let e = solve_command(SPEC, &quick_solve_args("quantum", None)).unwrap_err();
        assert!(e.contains("quantum"), "{e}");
        let mut args = quick_solve_args("sss", None);
        args.seeds = "1,x";
        let e = solve_command(SPEC, &args).unwrap_err();
        assert!(e.contains("bad seed"), "{e}");
        let mut args = quick_solve_args("sss", None);
        args.workers = Some(0);
        let e = solve_command(SPEC, &args).unwrap_err();
        assert!(e.contains("worker count"), "{e}");
        let e = solve_command(SPEC, &quick_solve_args("sss", Some("not json"))).unwrap_err();
        assert!(e.contains("JSON"), "{e}");
    }

    #[test]
    fn layout_flags_override_and_reject() {
        let topo = |t: &'static str| LayoutFlags {
            topology: Some(t),
            mcs: None,
        };
        let mcs = |m: &'static str| LayoutFlags {
            topology: None,
            mcs: Some(m),
        };
        // Explicit defaults are byte-identical to flag-free runs.
        let default_out =
            map_command(SPEC, "sss", 0, false, "min-max-apl", LayoutFlags::default()).unwrap();
        let explicit = map_command(SPEC, "sss", 0, false, "min-max-apl", topo("mesh")).unwrap();
        assert_eq!(default_out, explicit);
        let corners = map_command(SPEC, "sss", 0, false, "min-max-apl", mcs("corners")).unwrap();
        assert_eq!(default_out, corners);
        // Overrides change the solved instance.
        let torus = map_command(SPEC, "sss", 0, false, "min-max-apl", topo("torus")).unwrap();
        assert_ne!(default_out, torus);
        let custom = map_command(
            SPEC,
            "sss",
            0,
            false,
            "min-max-apl",
            mcs("custom:6,7,10,11"),
        )
        .unwrap();
        assert_ne!(default_out, custom);
        // Bad values surface as readable errors, not panics.
        let e = map_command(SPEC, "sss", 0, false, "min-max-apl", topo("ring")).unwrap_err();
        assert!(e.contains("--topology"), "{e}");
        for bad in ["custom:0", "custom:99", "custom:", "ring"] {
            let e = map_command(
                SPEC,
                "sss",
                0,
                false,
                "min-max-apl",
                LayoutFlags {
                    topology: None,
                    mcs: Some(bad),
                },
            )
            .unwrap_err();
            assert!(e.contains("--mcs"), "{bad}: {e}");
        }
        // eval and simulate honor the same overrides.
        let eval_torus =
            eval_command(SPEC, "1\n2\n3\n4\n5\n6\n7\n8\n", "apl", topo("torus")).unwrap();
        let eval_mesh = eval_command(
            SPEC,
            "1\n2\n3\n4\n5\n6\n7\n8\n",
            "apl",
            LayoutFlags::default(),
        )
        .unwrap();
        assert_ne!(eval_torus, eval_mesh);
        let sim = simulate_command(
            SPEC,
            "sss",
            1,
            5_000,
            topo("torus"),
            &MetricsHandle::disabled(),
        )
        .unwrap();
        assert!(!sim.contains("undrained"), "{sim}");
    }

    fn quick_place_args(exhaustive: bool) -> PlaceArgs<'static> {
        PlaceArgs {
            controllers: 1,
            topology: "mesh",
            exhaustive,
            annealed: if exhaustive { None } else { Some(40) },
            seed: 1,
            portfolio: false,
            workers: None,
            grid: true,
            metrics: MetricsHandle::disabled(),
        }
    }

    #[test]
    fn place_beats_or_matches_the_corner_baseline() {
        let out = place_command(SPEC, &quick_place_args(true)).unwrap();
        assert!(out.contains("placement search: 1 controller(s)"), "{out}");
        assert!(
            out.contains("exhaustive over canonical placements"),
            "{out}"
        );
        assert!(out.contains("baseline (corner-default)"), "{out}");
        assert!(out.contains("gain"), "{out}");
        assert!(out.contains("application grid"), "{out}");
        assert!(out.contains("max-APL"), "{out}");
        // Deterministic: same flags, same report.
        assert_eq!(out, place_command(SPEC, &quick_place_args(true)).unwrap());
        // Annealed mode runs too and reports its mode.
        let annealed = place_command(SPEC, &quick_place_args(false)).unwrap();
        assert!(annealed.contains("(annealed)"), "{annealed}");
    }

    #[test]
    fn place_rejects_bad_flags() {
        let mut args = quick_place_args(true);
        args.annealed = Some(10);
        let e = place_command(SPEC, &args).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let mut args = quick_place_args(false);
        args.annealed = Some(0);
        assert!(place_command(SPEC, &args).is_err());
        let mut args = quick_place_args(true);
        args.topology = "ring";
        let e = place_command(SPEC, &args).unwrap_err();
        assert!(e.contains("--topology"), "{e}");
        let mut args = quick_place_args(true);
        args.controllers = 0;
        assert!(place_command(SPEC, &args).is_err());
        let mut args = quick_place_args(true);
        args.controllers = 17;
        assert!(place_command(SPEC, &args).is_err());
    }

    #[test]
    fn latency_grids() {
        let out = latency_command(4, "corners").unwrap();
        assert!(out.contains("TC(k)"));
        assert!(out.contains("TM(k)"));
        assert!(latency_command(4, "ring").is_err());
    }
}
