//! `obm` — balanced multi-application NoC mapping from the command line.
//!
//! ```text
//! obm gen C1 [--seed S]                         emit an instance spec (stdout)
//! obm map <spec> [--algo sss] [--seed S] [--grid] [--objective min-max-apl]
//! obm eval <spec> <mapping> [--objective min-max-apl]
//!                                               mapping: one tile number per line
//! obm simulate <spec> [--algo sss] [--cycles N] [--seed S]
//! obm experiments trace <spec> [--algo sss] [--cycles N] [--seed S]
//!                      [--window W] [--chrome] [--out FILE]   JSON-lines telemetry
//!                                                 (--chrome: Chrome-trace JSON)
//! obm experiments heatmap <spec> [--algo sss] [--cycles N] [--seed S]
//!                        [--json] [--out FILE]    spatial link/VC/stall heatmap
//! obm experiments loadcurve|validate|tails [--fast]
//!                 [--injection bernoulli|geometric]     simulator sweeps
//! obm exact <spec> [--budget NODES]              prove the optimum (small chips)
//! obm solve <spec> [--portfolio | --algos sss,sa,...] [--seeds 0,1,2,3]
//!                  [--deadline-ms N] [--max-evals N] [--workers N]
//!                  [--aggressive] [--objective min-max-apl]
//!                  [--checkpoint FILE] [--resume FILE]
//! obm place <spec> [--controllers K] [--topology mesh|torus]
//!           [--exhaustive | --annealed N] [--seed S] [--portfolio] [--grid]
//!                                               co-optimize MC placement + mapping
//! obm latency [--mesh N] [--controllers corners|edges]
//! ```
//!
//! `map`, `eval`, `simulate`, `solve` and `experiments trace|heatmap`
//! additionally accept `--topology mesh|torus` and
//! `--mcs corners|edge-centers|custom:<k1,k2,...>` layout overrides.
//!
//! `simulate`, `solve`, `place` and every `experiments` subcommand accept
//! `--metrics FILE [--metrics-format prom|json]` to export a runtime
//! metrics snapshot (DESIGN.md §17); `obm status <snapshot>...` renders
//! one or more exported snapshots as an ASCII dashboard.

mod commands;
mod spec;

use std::process::ExitCode;

fn usage() -> &'static str {
    "obm — balanced multi-application NoC mapping (IPDPS'14 OBM reproduction)

USAGE:
  obm gen <C1..C8> [--seed S]
  obm map <spec-file> [--algo sss|global|mc|sa|greedy|random] [--seed S] [--grid]
          [--objective min-max-apl|max-min-balance|energy]
  obm eval <spec-file> <mapping-file> [--objective min-max-apl|max-min-balance|energy]
  obm simulate <spec-file> [--algo NAME] [--cycles N] [--seed S]
  obm experiments trace <spec-file> [--algo NAME] [--cycles N] [--seed S] [--window W]
                  [--chrome] [--out FILE]
  obm experiments heatmap <spec-file> [--algo NAME] [--cycles N] [--seed S] [--json] [--out FILE]
  obm experiments loadcurve|validate|tails|placement [--fast]
                  [--injection bernoulli|geometric]
  obm exact <spec-file> [--budget NODES]
  obm solve <spec-file> [--portfolio | --algos sss,sa,hybrid,greedy,mc,exact] [--seeds 0,1,2,3]
            [--deadline-ms N] [--max-evals N] [--workers N] [--aggressive]
            [--objective min-max-apl|max-min-balance|energy]
            [--checkpoint FILE] [--resume FILE]
  obm place <spec-file> [--controllers K] [--topology mesh|torus]
            [--exhaustive | --annealed N] [--seed S] [--portfolio] [--workers N] [--grid]
  obm latency [--mesh N] [--controllers corners|edges]
  obm status <snapshot-file>...                 render exported metrics snapshots
                                                as an ASCII dashboard (merged)

Layout overrides (map, eval, simulate, solve, experiments trace/heatmap):
  --topology mesh|torus                        link topology (default mesh)
  --mcs corners|edge-centers|custom:<k1,k2,..> memory-controller placement
                                               (default: the spec's controllers line)

Metrics export (simulate, solve, place, experiments *):
  --metrics FILE               write a runtime-metrics snapshot after the run
  --metrics-format prom|json   snapshot format (default prom: Prometheus text)
  OBM_METRICS_CLOCK=logical    zero wall-derived durations/gauges, making the
                               snapshot byte-deterministic for a fixed seed

The spec format is documented in the repository README and crates/cli/src/spec.rs."
}

/// Minimal flag extraction: returns (positional, flag-lookup).
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = if it.peek().is_some_and(|v| !v.starts_with("--")) {
                    it.next()
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&Option<String>> {
        self.flags.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    fn value_flag(&self, name: &str) -> Result<Option<&str>, String> {
        match self.flag(name) {
            None => Ok(None),
            Some(Some(v)) => Ok(Some(v)),
            Some(None) => Err(format!("--{name} requires a value")),
        }
    }

    fn parse_flag<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.value_flag(name)? {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
        }
    }

    /// Like [`Args::parse_flag`] but with no default: absent flags stay
    /// `None`.
    fn opt_parse_flag<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.value_flag(name)? {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|e| format!("--{name}: {e}")),
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// The shared `--topology`/`--mcs` layout overrides.
fn layout_flags(args: &Args) -> Result<commands::LayoutFlags<'_>, String> {
    Ok(commands::LayoutFlags {
        topology: args.value_flag("topology")?,
        mcs: args.value_flag("mcs")?,
    })
}

/// Where `--metrics` asked for the snapshot to land.
struct MetricsSink {
    path: String,
    json: bool,
}

/// `--metrics <path>` / `--metrics-format prom|json`: build the registry
/// every instrumented command reports into. Absent flag ⇒ disabled handle
/// (the never-taken-branch fast path). `OBM_METRICS_CLOCK=logical` swaps
/// the wall clock for a logical one, zeroing every wall-derived value so
/// fixed-seed snapshots are byte-deterministic (DESIGN.md §17).
fn metrics_setup(args: &Args) -> Result<(noc_metrics::MetricsHandle, Option<MetricsSink>), String> {
    let Some(path) = args.value_flag("metrics")? else {
        return Ok((noc_metrics::MetricsHandle::disabled(), None));
    };
    let json = match args.value_flag("metrics-format")?.unwrap_or("prom") {
        "prom" => false,
        "json" => true,
        other => {
            return Err(format!(
                "--metrics-format: unknown format '{other}' (try prom or json)"
            ))
        }
    };
    let clock = match std::env::var("OBM_METRICS_CLOCK") {
        Err(_) => noc_metrics::ClockMode::Wall,
        Ok(v) if v == "wall" || v.is_empty() => noc_metrics::ClockMode::Wall,
        Ok(v) if v == "logical" => noc_metrics::ClockMode::Logical,
        Ok(v) => {
            return Err(format!(
                "OBM_METRICS_CLOCK: unknown mode '{v}' (try wall or logical)"
            ))
        }
    };
    let registry = noc_metrics::MetricsRegistry::with_clock(clock);
    Ok((
        registry.handle(),
        Some(MetricsSink {
            path: path.to_string(),
            json,
        }),
    ))
}

/// Export the end-of-run snapshot to the `--metrics` file, if asked for.
fn write_metrics(
    metrics: &noc_metrics::MetricsHandle,
    sink: &Option<MetricsSink>,
) -> Result<(), String> {
    let (Some(sink), Some(snap)) = (sink.as_ref(), metrics.snapshot()) else {
        return Ok(());
    };
    let text = if sink.json {
        snap.to_json_lines()
    } else {
        snap.to_prometheus()
    };
    std::fs::write(&sink.path, text).map_err(|e| format!("cannot write {}: {e}", sink.path))
}

fn run() -> Result<String, String> {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return Err(usage().to_string());
    }
    let cmd = raw.remove(0);
    let args = Args::parse(raw)?;
    let (metrics, sink) = metrics_setup(&args)?;
    let out = run_command(&cmd, &args, &metrics)?;
    write_metrics(&metrics, &sink)?;
    Ok(out)
}

fn run_command(
    cmd: &str,
    args: &Args,
    metrics: &noc_metrics::MetricsHandle,
) -> Result<String, String> {
    match cmd {
        "gen" => {
            let cfg = args
                .positional
                .first()
                .ok_or("gen needs a configuration name (C1..C8)")?;
            let seed = args.parse_flag::<u64>("seed", u64::MAX)?;
            commands::generate(cfg, (seed != u64::MAX).then_some(seed))
        }
        "map" => {
            let spec = read(args.positional.first().ok_or("map needs a spec file")?)?;
            let algo = args.value_flag("algo")?.unwrap_or("sss");
            let seed = args.parse_flag::<u64>("seed", 0)?;
            let objective = args.value_flag("objective")?.unwrap_or("min-max-apl");
            commands::map_command(
                &spec,
                algo,
                seed,
                args.flag("grid").is_some(),
                objective,
                layout_flags(args)?,
            )
        }
        "eval" => {
            let spec = read(args.positional.first().ok_or("eval needs a spec file")?)?;
            let mapping = read(args.positional.get(1).ok_or("eval needs a mapping file")?)?;
            let objective = args.value_flag("objective")?.unwrap_or("min-max-apl");
            commands::eval_command(&spec, &mapping, objective, layout_flags(args)?)
        }
        "simulate" => {
            let spec = read(
                args.positional
                    .first()
                    .ok_or("simulate needs a spec file")?,
            )?;
            let algo = args.value_flag("algo")?.unwrap_or("sss");
            let seed = args.parse_flag::<u64>("seed", 0)?;
            let cycles = args.parse_flag::<u64>("cycles", 50_000)?;
            commands::simulate_command(&spec, algo, seed, cycles, layout_flags(args)?, metrics)
        }
        "experiments" => {
            let sub = args.positional.first().ok_or(
                "experiments needs a subcommand (trace|heatmap|loadcurve|validate|tails|placement)",
            )?;
            // The simulator sweeps from the bench harness: latency
            // statistics at offered loads, so they default to the
            // geometric fast path; `--injection bernoulli` restores the
            // per-cycle process for apples-to-apples comparisons.
            if matches!(
                sub.as_str(),
                "loadcurve" | "validate" | "tails" | "placement"
            ) {
                let fast = args.flag("fast").is_some();
                let injection = args.parse_flag::<noc_sim::InjectionProcess>(
                    "injection",
                    noc_sim::InjectionProcess::Geometric,
                )?;
                return obm_bench::experiments::run_with_metrics(sub, fast, injection, metrics)
                    .map(|out| out.trim_end().to_string())
                    .ok_or_else(|| format!("experiment '{sub}' unavailable"));
            }
            if !matches!(sub.as_str(), "trace" | "heatmap") {
                return Err(format!(
                    "unknown experiments subcommand '{sub}' \
                     (try trace, heatmap, loadcurve, validate, tails or placement)"
                ));
            }
            let spec = read(
                args.positional
                    .get(1)
                    .ok_or_else(|| format!("experiments {sub} needs a spec file"))?,
            )?;
            let algo = args.value_flag("algo")?.unwrap_or("sss");
            let seed = args.parse_flag::<u64>("seed", 0)?;
            let cycles = args.parse_flag::<u64>("cycles", 20_000)?;
            let layout = layout_flags(args)?;
            let out = if sub == "heatmap" {
                commands::heatmap_command(
                    &spec,
                    algo,
                    seed,
                    cycles,
                    args.flag("json").is_some(),
                    layout,
                )?
            } else {
                let window = args.parse_flag::<u64>("window", 1_000)?;
                if args.flag("chrome").is_some() {
                    commands::chrome_trace_command(&spec, algo, seed, cycles, window, layout)?
                } else {
                    commands::trace_command(&spec, algo, seed, cycles, window, layout)?
                }
            };
            match args.value_flag("out")? {
                Some(path) => {
                    std::fs::write(path, &out).map_err(|e| format!("cannot write {path}: {e}"))?;
                    Ok(format!(
                        "wrote {} JSON lines to {path}",
                        out.lines().count()
                    ))
                }
                // The JSON(-lines) output may end in a newline; trim it
                // so main's println! doesn't add a blank trailing line.
                None => Ok(out.trim_end().to_string()),
            }
        }
        "exact" => {
            let spec = read(args.positional.first().ok_or("exact needs a spec file")?)?;
            let budget = args.parse_flag::<u64>("budget", 20_000_000)?;
            commands::exact_command(&spec, budget)
        }
        "solve" => {
            let spec = read(args.positional.first().ok_or("solve needs a spec file")?)?;
            // `--portfolio` is an explicit spelling of the default line-up.
            let algos = if args.flag("portfolio").is_some() {
                "portfolio"
            } else {
                args.value_flag("algos")?.unwrap_or("portfolio")
            };
            let seeds = args.value_flag("seeds")?.unwrap_or("0,1,2,3");
            let resume_text = match args.value_flag("resume")? {
                Some(path) => Some(read(path)?),
                None => None,
            };
            let solve_args = commands::SolveArgs {
                algos,
                seeds,
                deadline_ms: args.opt_parse_flag::<u64>("deadline-ms")?,
                max_evals: args.opt_parse_flag::<u64>("max-evals")?,
                workers: args.opt_parse_flag::<usize>("workers")?,
                aggressive: args.flag("aggressive").is_some(),
                objective: args.value_flag("objective")?.unwrap_or("min-max-apl"),
                resume_json: resume_text.as_deref(),
                layout: layout_flags(args)?,
                metrics: metrics.clone(),
            };
            let (report, checkpoint) = commands::solve_command(&spec, &solve_args)?;
            if let Some(path) = args.value_flag("checkpoint")? {
                std::fs::write(path, format!("{checkpoint}\n"))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
            }
            Ok(report)
        }
        "place" => {
            let spec = read(args.positional.first().ok_or("place needs a spec file")?)?;
            let place_args = commands::PlaceArgs {
                controllers: args.parse_flag::<usize>("controllers", 4)?,
                topology: args.value_flag("topology")?.unwrap_or("mesh"),
                exhaustive: args.flag("exhaustive").is_some(),
                annealed: args.opt_parse_flag::<usize>("annealed")?,
                seed: args.parse_flag::<u64>("seed", 1)?,
                portfolio: args.flag("portfolio").is_some(),
                workers: args.opt_parse_flag::<usize>("workers")?,
                grid: args.flag("grid").is_some(),
                metrics: metrics.clone(),
            };
            commands::place_command(&spec, &place_args)
        }
        "latency" => {
            let n = args.parse_flag::<usize>("mesh", 8)?;
            let ctrl = args.value_flag("controllers")?.unwrap_or("corners");
            commands::latency_command(n, ctrl)
        }
        "status" => commands::status_command(&args.positional),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
