//! Offline stand-in for `crossbeam` (API subset).
//!
//! The workspace uses `crossbeam::thread::scope` for fork–join parallelism
//! (scoped threads borrowing stack data) and `crossbeam::channel` for
//! worker→aggregator result passing. Since Rust 1.63, std has scoped
//! threads, so this vendored crate is a thin adapter exposing crossbeam's
//! signatures (`scope(|s| ...)` returning `thread::Result`, spawn closures
//! receiving `&Scope`) over `std::thread::scope` and `std::sync::mpsc`.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` calling convention.

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, returning `Err` if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Spawn surface passed to the `scope` closure and to every spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. As in crossbeam, the closure receives the
        /// scope again so it can spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Unlike crossbeam (which catches panics from
    /// unjoined threads), std scoped threads propagate child panics on
    /// scope exit, so the `Ok` wrapper here is unconditional — matching
    /// callers that `.expect("crossbeam scope")` the result.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Multi-producer channels over `std::sync::mpsc`.

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half (cloneable).
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), mpsc::SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half (cloneable, receivers share the queue).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.lock().expect("channel receiver poisoned").recv()
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.lock().expect("channel receiver poisoned").try_recv()
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received values; ends when all senders drop.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_in_order() {
        let data = [3u64, 1, 4, 1, 5];
        let doubled = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 42).join().expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }

    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = crate::channel::unbounded();
        crate::thread::scope(|s| {
            for i in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).expect("send"));
            }
            drop(tx);
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        })
        .expect("scope");
    }
}
