//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on model types but never
//! feeds them to a serializer (no `serde_json` etc. in the dependency
//! tree), so the derives only need to exist, not generate code. The
//! container cannot reach crates.io; the workspace patches `serde` here.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
