//! Named RNGs. Only `SmallRng` is provided: a xoshiro256++ generator, the
//! same algorithm the real `rand 0.8` selects for `SmallRng` on 64-bit
//! platforms (fast, 256-bit state, passes BigCrush except linear-complexity
//! tests irrelevant to simulation use).

use crate::{RngCore, SeedableRng};

/// Small, fast, non-cryptographic RNG (xoshiro256++).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // All-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        SmallRng { s }
    }
}
