//! Offline stand-in for the `rand` crate (API subset).
//!
//! The build container has no route to crates.io, so the workspace patches
//! `rand` to this vendored implementation. It provides exactly the surface
//! the workspace uses:
//!
//! - [`rngs::SmallRng`] — xoshiro256++ (the same algorithm the real
//!   `rand 0.8` uses for `SmallRng` on 64-bit targets), seeded through
//!   SplitMix64 like the real `SeedableRng::seed_from_u64`;
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`];
//! - [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: every method consumes a fixed number of draws from
//! the underlying stream (`gen_bool` and `gen::<f64>` one draw; integer
//! `gen_range` one draw; float `gen_range` one draw), so seeded simulations
//! are bit-reproducible across platforms. The exact streams differ from the
//! real `rand` crate (which uses rejection sampling in `gen_range`), which
//! is fine: nothing in this workspace depends on upstream `rand`'s streams,
//! only on self-consistent seeded reproducibility and statistical quality.

pub mod rngs;
pub mod seq;

/// Low-level uniform word source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
///
/// The trait layout mirrors the real crate (`T: SampleUniform` bound on
/// `gen_range` plus blanket range impls below) because the bound is what
/// drives inference: in `let n: usize = rng.gen_range(1..=7)` or
/// `n + rng.gen_range(0..=2)`, the output type must flow back into the
/// range literals, which only happens when the candidate set for `T` is
/// pruned to `SampleUniform` implementors.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`
    /// (`inclusive == true`). Always consumes exactly one `next_u64`.
    fn sample_single<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                // 128-bit multiply-shift (Lemire, no rejection): uniform
                // enough for simulation purposes and always one draw.
                if inclusive {
                    assert!(lo <= hi, "empty gen_range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let x = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                    lo.wrapping_add(x as $t)
                } else {
                    assert!(lo < hi, "empty gen_range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    let x = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    lo.wrapping_add(x as $t)
                }
            }
        }
    )*};
}
int_sample_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                _inclusive: bool,
                rng: &mut R,
            ) -> $t {
                assert!(lo < hi, "empty gen_range");
                let u: f64 = Standard::sample(rng);
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f64, f32);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_single(lo, hi, true, rng)
    }
}

/// The user-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw; always consumes exactly one `next_u64`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (same construction as
    /// the real crate's default implementation).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn gen_range_bounds_and_mean() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
            sum += x as f64;
        }
        assert!((sum / 100_000.0 - 4.5).abs() < 0.05);
        for _ in 0..1000 {
            let f = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
            let i = rng.gen_range(1..=7);
            assert!((1..=7).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input sorted");
    }
}
