//! Sequence helpers (subset of `rand::seq`).

use crate::RngCore;

/// Extension trait for slices (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = ((rng.next_u64() as u128 * self.len() as u128) >> 64) as usize;
            Some(&self[i])
        }
    }
}
