//! No-op derive macros for the vendored offline `serde` stand-in: the
//! workspace only needs `#[derive(Serialize, Deserialize)]` to parse, not
//! to generate impls, because nothing serializes (no serializer crate is
//! in the offline dependency tree).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
