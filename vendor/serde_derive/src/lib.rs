//! No-op derive macros for the vendored offline `serde` stand-in: the
//! workspace only needs `#[derive(Serialize, Deserialize)]` to parse, not
//! to generate impls, because nothing serializes (no serializer crate is
//! in the offline dependency tree). The `serde` helper attribute is
//! declared so field annotations like `#[serde(skip, default)]` parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
