//! The `Strategy` trait and the combinators/base strategies the workspace
//! uses. Generation only — no shrinking.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of `Value`.
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filter generated values; retries until `pred` accepts (bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` strategy (see [`crate::Arbitrary`]).
pub struct AnyStrategy<T>(pub(crate) core::marker::PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
