//! Offline stand-in for `proptest` (API subset, no shrinking).
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `proptest` to this vendored implementation. It covers the surface the
//! workspace's property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map`;
//! - range strategies (`0usize..16`, `2usize..=5`, `0.01f64..10.0`, ...),
//!   tuple strategies up to 8 elements, [`strategy::Just`],
//!   [`collection::vec`], [`bool::ANY`], and [`any`];
//! - `prop_assert!` / `prop_assert_eq!` (plain assertions — on failure the
//!   panic message carries the case; there is no shrinking phase).
//!
//! The runner is deterministic: each test's RNG is seeded from a hash of
//! the test name, so failures reproduce run-to-run and across machines.

pub mod strategy;

pub mod test_runner {
    //! Runner configuration and the deterministic test RNG.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Subset of proptest's config: only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// RNG handed to strategies; seeded per test from the test's name.
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Deterministic per-test seed: FNV-1a over the test name.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(h))
        }
    }
}

pub mod collection {
    //! `Vec` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification: a fixed size or a (half-open) range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniform `bool` strategy (proptest's `proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! arb_uniform_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                use rand::RngCore;
                rng.0.next_u64() as $t
            }
        }
    )*};
}
arb_uniform_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng;
        rng.0.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        use rand::Rng;
        // Finite, sign-symmetric, spanning a broad magnitude range.
        let mag = rng.0.gen_range(-300.0..300.0);
        let sign = if rng.0.gen_bool(0.5) { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

/// Strategy producing any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(core::marker::PhantomData)
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test. No shrinking: the assertion message (and
/// any formatted context) is the whole diagnostic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written explicitly by the caller,
/// as with real proptest) running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cases = ($cfg).cases;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!{ config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, f64)> {
        (1usize..=4, any::<u64>())
            .prop_flat_map(|(n, _seed)| (Just(n), 0.5f64..1.5))
            .prop_map(|(n, x)| (n, x * n as f64))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..16, y in 2usize..=5, f in 0.25f64..4.0) {
            prop_assert!(x < 16);
            prop_assert!((2..=5).contains(&y));
            prop_assert!((0.25..4.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0u64..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn combinators_compose(p in arb_pair(), b in crate::bool::ANY) {
            let (n, x) = p;
            prop_assert!(x >= 0.5 * n as f64 && x < 1.5 * n as f64);
            let _ = b;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 5);
        let mut r1 = crate::test_runner::TestRng::deterministic("t");
        let mut r2 = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
