//! Offline stand-in for `criterion` (API subset).
//!
//! The build container cannot reach crates.io, so the workspace patches
//! `criterion` to this vendored harness. It measures for real — auto-scaled
//! iteration counts, several timed samples, median-of-samples reporting —
//! but skips criterion's statistics engine, warm-up configuration, and
//! HTML reports. Output format per benchmark:
//!
//! ```text
//! group/name              time: 1234567 ns/iter (12 samples)
//! ```
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a computation's result.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing context handed to benchmark closures.
#[derive(Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Measure `f`: calibrate an iteration count targeting ~40 ms per
    /// sample, then record `sample_count` timed samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let sample_count = self.sample_count.max(2);
        // Calibrate: run single iterations until ~20 ms or 64 iters.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(20) && calib_iters < 64 {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_nanos().max(1) / calib_iters.max(1) as u128;
        let iters = ((40_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> u128 {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return 0;
        }
        let mut ns: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / self.iters_per_sample as u128)
            .collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }
}

fn run_one(label: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_count),
        iters_per_sample: 0,
        sample_count,
    };
    f(&mut b);
    println!(
        "{label:<48} time: {:>12} ns/iter ({} samples)",
        b.median_ns_per_iter(),
        b.samples.len()
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_count: 8,
        }
    }
}

impl Criterion {
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, self.default_sample_count, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: self.default_sample_count,
            _criterion: self,
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion semantics: sample count per benchmark (we reuse it as the
    /// number of timed samples).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_count, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_count,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            samples: Vec::with_capacity(3),
            iters_per_sample: 0,
            sample_count: 3,
        };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.iters_per_sample >= 1);
        assert!(b.median_ns_per_iter() > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("sss", 64).label, "sss/64");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
    }
}
