//! Mapping on non-default chips: a rectangular 4×8 mesh with
//! edge-centered memory controllers hosting three applications of unequal
//! size, and a 16×16 chip demonstrating the `O(N³)` scaling headroom of
//! sort-select-swap.
//!
//! ```text
//! cargo run --release --example custom_chip
//! ```

use obm::mapping::algorithms::{Mapper, SortSelectSwap};
use obm::mapping::{evaluate, ObmInstance};
use obm::model::{LatencyParams, MemoryControllers, Mesh, TileLatencies};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    // --- A 4×8 rectangular chip with edge-centered controllers.
    let mesh = Mesh::new(4, 8);
    let mcs = MemoryControllers::edge_centers(&mesh);
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    println!(
        "4×8 mesh, edge-centered controllers at tiles {:?}",
        mcs.tiles().iter().map(|t| t.to_paper()).collect::<Vec<_>>()
    );

    // Three apps of unequal size: 8 + 12 + 10 threads on 32 tiles (2 idle).
    let mut rng = SmallRng::seed_from_u64(7);
    let mut c = Vec::new();
    let mut bounds = vec![0];
    for (threads, scale) in [(8usize, 1.0), (12, 5.0), (10, 2.5)] {
        for _ in 0..threads {
            c.push(scale * rng.gen_range(0.5..2.0));
        }
        bounds.push(c.len());
    }
    let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
    let inst = ObmInstance::new(tiles, bounds, c, m);
    let mapping = SortSelectSwap::default().map(&inst, 0);
    let r = evaluate(&inst, &mapping);
    println!(
        "  3 apps ({} threads on {} tiles): per-app APL {:?} | dev-APL {:.3}",
        inst.num_threads(),
        inst.num_tiles(),
        r.per_app
            .iter()
            .map(|d| (d * 100.0).round() / 100.0)
            .collect::<Vec<f64>>(),
        r.dev_apl
    );

    // --- Scaling: 16×16 (256 tiles, 8 apps × 32 threads).
    let mesh = Mesh::square(16);
    let tiles = TileLatencies::compute(
        &mesh,
        &MemoryControllers::corners(&mesh),
        LatencyParams::paper_table2(),
    );
    let mut c = Vec::new();
    let mut bounds = vec![0];
    for app in 0..8 {
        let scale = 1.5f64.powi(app);
        for _ in 0..32 {
            c.push(scale * rng.gen_range(0.5..2.0));
        }
        bounds.push(c.len());
    }
    let m: Vec<f64> = c.iter().map(|x| x * 0.15).collect();
    let inst = ObmInstance::new(tiles, bounds, c, m);
    let t0 = Instant::now();
    let mapping = SortSelectSwap::default().map(&inst, 0);
    let dt = t0.elapsed();
    let r = evaluate(&inst, &mapping);
    println!(
        "16×16 mesh, 8 apps × 32 threads: mapped in {:.2?} | max-APL {:.2} | dev-APL {:.3}",
        dt, r.max_apl, r.dev_apl
    );
    println!("Sub-second even at 256 tiles — fast enough for online remapping.");
}
