//! Quickstart: map four applications onto an 8×8 CMP with balanced
//! on-chip latency.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use obm::prelude::*;

fn main() {
    // 1. A multi-application workload: the paper's C1 configuration —
    //    four 16-thread PARSEC-like applications with calibrated rates.
    let (workload, _traces) = WorkloadBuilder::paper(PaperConfig::C1).build();
    println!("Applications (ascending total communication rate):");
    for (i, app) in workload.apps.iter().enumerate() {
        println!(
            "  App {}: {:24} total rate {:8.2} req/kcycle",
            i + 1,
            app.name,
            app.total_rate()
        );
    }

    // 2. The chip: 8×8 mesh, distributed shared L2, corner memory
    //    controllers, Table 2 latency parameters.
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = workload.rate_vectors();
    let instance = ObmInstance::new(tiles, workload.boundaries(), c, m);

    // 3. Map with the paper's sort-select-swap and with the traditional
    //    overall-latency optimum as the baseline.
    let sss = SortSelectSwap::default().map(&instance, 0);
    let glob = Global.map(&instance, 0);
    let r_sss = evaluate(&instance, &sss);
    let r_glob = evaluate(&instance, &glob);

    println!("\nPer-application average packet latency (cycles):");
    println!("  app        Global      SSS");
    for i in 0..workload.num_apps() {
        println!(
            "  App {}    {:7.2}  {:7.2}",
            i + 1,
            r_glob.per_app[i],
            r_sss.per_app[i]
        );
    }
    println!(
        "\n  max-APL  {:7.2}  {:7.2}   ({:+.1}%)",
        r_glob.max_apl,
        r_sss.max_apl,
        (r_sss.max_apl / r_glob.max_apl - 1.0) * 100.0
    );
    println!("  dev-APL  {:7.3}  {:7.3}", r_glob.dev_apl, r_sss.dev_apl);
    println!(
        "  g-APL    {:7.2}  {:7.2}   ({:+.1}%)",
        r_glob.g_apl,
        r_sss.g_apl,
        (r_sss.g_apl / r_glob.g_apl - 1.0) * 100.0
    );
    println!("\nSSS equalizes the applications' latencies at a tiny g-APL cost.");
}
