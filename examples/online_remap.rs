//! Closed-loop online remapping (DESIGN.md §14) — the full lifecycle the
//! paper's §IV.B sketches, end to end against the cycle-level simulator:
//!
//! 1. **arrive** — two applications are admitted onto a shared 4×4 CMP
//!    with a single memory controller and mapped with sort-select-swap;
//! 2. **drift** — mid-run the workloads trade roles (the light
//!    cache-bound app turns memory-bound and vice versa), so the
//!    arrival-time mapping strands the now-memory-bound app far from
//!    the controller;
//! 3. **remap** — a [`RemapController`] plugged into
//!    `Network::run_controlled` watches the windowed telemetry,
//!    detects the per-app APL drift, re-solves warm-started from the
//!    incumbent under a migration-penalized objective and swaps the
//!    mapping at a window boundary, without draining the network;
//! 4. **depart** — one app exits and the system re-packs the survivor
//!    from the controller's final mapping, accounting migration cost.
//!
//! ```text
//! cargo run --release --example online_remap
//! ```

use obm::mapping::dynamic::{AppSpec, DynamicSystem};
use obm::prelude::*;

const WARMUP: u64 = 2_000;
const MEASURE: u64 = 28_000;
const EPOCH: u64 = 6_000;

fn max_group_apl(report: &SimReport) -> f64 {
    report
        .groups
        .iter()
        .filter(|g| g.packets > 0)
        .map(|g| g.apl())
        .fold(f64::NEG_INFINITY, f64::max)
}

fn main() {
    // -- arrive ----------------------------------------------------------
    let mesh = Mesh::square(4);
    let mcs = MemoryControllers::try_custom(&mesh, vec![TileId(0)]).expect("valid placement");
    let tiles = TileLatencies::compute(&mesh, &mcs, LatencyParams::paper_table2());
    let mut sys = DynamicSystem::new(tiles.clone());

    // db-shard arrives memory-bound, edge-cache arrives cache-bound.
    let heavy = (2.0, 10.0); // (cache, mem) packets per kilocycle per thread
    let light = (3.0, 0.3);
    let app = |name: &str, (c, m): (f64, f64)| AppSpec {
        name: name.to_string(),
        cache_rates: vec![c; 4],
        mem_rates: vec![m; 4],
    };
    println!("== arrive: db-shard (4 threads, memory-bound)");
    sys.add_app(app("db-shard", heavy))
        .expect("capacity for 4 threads");
    println!("== arrive: edge-cache (4 threads, cache-bound)");
    sys.add_app(app("edge-cache", light))
        .expect("capacity for 8 threads");

    let mapper = SortSelectSwap::default();
    let admitted = sys.remap(&mapper, 0);
    let e1 = sys.instance();
    println!(
        "   mapped {} threads: analytic per-app APL {:?}, max-APL {:.2}",
        sys.threads_in_use(),
        admitted
            .report
            .per_app
            .iter()
            .map(|d| (d * 100.0).round() / 100.0)
            .collect::<Vec<_>>(),
        admitted.report.max_apl
    );

    // -- drift -----------------------------------------------------------
    // At cycle 6 000 the roles flip: edge-cache turns memory-bound while
    // db-shard goes light. The piecewise trace covers warmup + measure
    // exactly (5 × 6 000 cycles), so the wrap-around never engages.
    let e2 = ObmInstance::new(
        tiles,
        e1.boundaries().to_vec(),
        [light.0; 4]
            .iter()
            .chain([heavy.0; 4].iter())
            .copied()
            .collect(),
        [light.1; 4]
            .iter()
            .chain([heavy.1; 4].iter())
            .copied()
            .collect(),
    );
    let traffic =
        |mapping: &Mapping| piecewise_traffic_spec(&[&e1, &e2, &e2, &e2, &e2], mapping, EPOCH);
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.controllers =
        MemoryControllers::try_custom(&mesh, vec![TileId(0)]).expect("valid placement");
    cfg.warmup_cycles = WARMUP;
    cfg.measure_cycles = MEASURE;
    cfg.seed = 0xD01F;
    println!("== drift: at cycle {EPOCH} the apps trade roles (cache-bound <-> memory-bound)");

    // Baseline: fly the arrival-time mapping statically through the drift.
    let static_report = Network::new(cfg.clone(), traffic(&admitted.mapping))
        .expect("valid scenario")
        .run();
    let static_apl = max_group_apl(&static_report);
    println!("   static mapping realized max-APL {static_apl:.2} (no reaction)");

    // -- remap -----------------------------------------------------------
    // Same seed, same traffic — but now the controller watches the
    // windowed telemetry and may retarget the sources mid-run.
    let mut ctrl =
        RemapController::new(e1.clone(), admitted.mapping.clone(), mesh).expect("valid controller");
    let controlled_report = Network::new(cfg, traffic(&admitted.mapping))
        .expect("valid scenario")
        .run_controlled(&mut NoopSink, &mut ctrl)
        .expect("controller produces valid retargets");
    let controlled_apl = max_group_apl(&controlled_report);
    for ev in ctrl.events() {
        println!(
            "   remap @ cycle {}: app {} drifted {:.0}% (APL {:.2} vs baseline {:.2}) -> \
             moved {} threads over {} hops, predicted max-APL {:.2} -> {:.2}",
            ev.cycle,
            ev.app,
            ev.drift * 100.0,
            ev.realized_apl,
            ev.baseline_apl,
            ev.threads_moved,
            ev.migration_cost,
            ev.predicted_before,
            ev.predicted_after
        );
    }
    println!(
        "   controlled realized max-APL {controlled_apl:.2} ({:.1}% better, {} remap(s), {} re-solve(s))",
        (static_apl - controlled_apl) / static_apl * 100.0,
        ctrl.remap_count(),
        ctrl.solves()
    );

    // -- depart ----------------------------------------------------------
    println!("== depart: db-shard exits");
    sys.remove_app(0);
    let repacked = sys.remap_from(&mapper, 0, ctrl.mapping(), &mesh);
    println!(
        "   re-packed {} threads from the controller's final mapping: \
         max-APL {:.2}, moved {} threads ({} hops)",
        sys.threads_in_use(),
        repacked.report.max_apl,
        repacked.threads_moved,
        repacked.migration_cost
    );
}
