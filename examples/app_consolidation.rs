//! Dynamic application consolidation on a shared CMP — the scenario the
//! paper's §IV.B closes with: applications arrive and depart at runtime,
//! and because sort-select-swap runs in `O(N³)` (well under a millisecond
//! at this scale) the system can recompute a balanced mapping at every
//! change using rates collected by a runtime monitor.
//!
//! ```text
//! cargo run --release --example app_consolidation
//! ```

use obm::mapping::algorithms::SortSelectSwap;
use obm::mapping::dynamic::{AppSpec, DynamicSystem};
use obm::model::{Mesh, TileLatencies};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn measured_app(rng: &mut SmallRng, name: &str, threads: usize, scale: f64) -> AppSpec {
    let cache_rates: Vec<f64> = (0..threads)
        .map(|_| scale * rng.gen_range(0.5..2.0))
        .collect();
    let mem_rates = cache_rates.iter().map(|c| c * 0.15).collect();
    AppSpec {
        name: name.to_string(),
        cache_rates,
        mem_rates,
    }
}

fn main() {
    let mesh = Mesh::square(8);
    let mut sys = DynamicSystem::new(TileLatencies::paper_default(&mesh));
    let mapper = SortSelectSwap::default();
    let mut rng = SmallRng::seed_from_u64(2014);
    // The mapping currently deployed on the chip, used to account for
    // thread-migration cost at each remap.
    let mut previous = None;

    // A timeline of arrivals and departures on the shared chip.
    let timeline: Vec<(&str, Option<AppSpec>)> = vec![
        (
            "t=0   web-frontend (16 threads) arrives",
            Some(measured_app(&mut rng, "web-frontend", 16, 2.0)),
        ),
        (
            "t=1   analytics    (32 threads) arrives",
            Some(measured_app(&mut rng, "analytics", 32, 8.0)),
        ),
        (
            "t=2   ml-inference (16 threads) arrives",
            Some(measured_app(&mut rng, "ml-inference", 16, 4.0)),
        ),
        ("t=3   analytics departs", None),
        (
            "t=4   batch-etl    (32 threads) arrives",
            Some(measured_app(&mut rng, "batch-etl", 32, 6.0)),
        ),
    ];

    for (label, event) in timeline {
        println!("== {label}");
        match event {
            Some(spec) => {
                let name = spec.name.clone();
                match sys.add_app(spec) {
                    Ok(_) => println!("   admitted {name}"),
                    Err(e) => {
                        println!("   REJECTED {name}: {e}");
                        continue;
                    }
                }
            }
            None => {
                // depart the named app (here: "analytics")
                let idx = sys
                    .apps()
                    .iter()
                    .position(|a| a.name == "analytics")
                    .expect("analytics is running");
                sys.remove_app(idx);
            }
        }
        let t0 = Instant::now();
        let out = match &previous {
            Some(prev) => sys.remap_from(&mapper, 0, prev, &mesh),
            None => sys.remap(&mapper, 0),
        };
        let dt = t0.elapsed();
        println!(
            "   remapped {} threads in {:.2?}: per-app APL {:?} | max-APL {:.2} | dev-APL {:.3} | moved {} threads ({} hops)",
            sys.threads_in_use(),
            dt,
            out.report
                .per_app
                .iter()
                .map(|d| (d * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            out.report.max_apl,
            out.report.dev_apl,
            out.threads_moved,
            out.migration_cost
        );
        previous = Some(out.mapping);
    }

    // Capacity guard: an application that does not fit is rejected.
    println!("== t=5   giant (64 threads) arrives");
    let giant = measured_app(&mut rng, "giant", 64, 1.0);
    match sys.add_app(giant) {
        Ok(_) => println!("   admitted (unexpected!)"),
        Err(e) => println!("   rejected as expected: {e}"),
    }
}
