//! End-to-end check of a mapping against the cycle-level NoC simulator:
//! build a workload, map it with Global and with sort-select-swap, then
//! replay both mappings through the flit-level wormhole network and
//! compare the *measured* per-application latencies — the analytic claim
//! ("SSS balances latency") must survive contact with a real router
//! pipeline, and the measured queueing latency must stay in the paper's
//! 0–1 cycle band.
//!
//! ```text
//! cargo run --release --example simulate_mapping
//! ```

use obm::prelude::*;

/// Replay a mapping through the simulator with windowed telemetry; returns
/// the report and the peak measure-window buffered-flit occupancy.
fn simulate(inst: &ObmInstance, mapping: &Mapping, seed: u64) -> (SimReport, usize) {
    let mesh = Mesh::square(8);
    let cfg = SimConfig::builder(mesh)
        .warmup_cycles(5_000)
        .measure_cycles(60_000)
        .seed(seed)
        .build()
        .expect("paper defaults with a longer run are valid");
    let mut sink = RingSink::new(4096);
    let report = Network::new(cfg, traffic_spec(inst, mapping))
        .expect("valid scenario")
        .run_probed(&mut sink);
    let peak_buffered = sink
        .windows()
        .filter(|w| w.phase == Phase::Measure)
        .map(|w| w.buffered_flits)
        .max()
        .unwrap_or(0);
    (report, peak_buffered)
}

fn main() {
    let (workload, _) = WorkloadBuilder::paper(PaperConfig::C3).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = workload.rate_vectors();
    let inst = ObmInstance::new(tiles, workload.boundaries(), c, m);

    for (name, mapping) in [
        ("Global", Global.map(&inst, 0)),
        ("SSS", SortSelectSwap::default().map(&inst, 0)),
    ] {
        let analytic = evaluate(&inst, &mapping);
        println!("== {name}: simulating 60k cycles of C3 traffic…");
        let (sim, peak_buffered) = simulate(&inst, &mapping, 99);
        println!("   analytic per-app APL: {:?}", round2(&analytic.per_app));
        println!("   simulated per-app APL: {:?}", round2(&sim.group_apls()));
        println!(
            "   g-APL analytic {:.2} vs simulated {:.2} | measured td_q {:.3} cycles | {} packets{}",
            analytic.g_apl,
            sim.g_apl(),
            sim.mean_td_q(),
            sim.delivered,
            if sim.fully_drained { "" } else { " (undrained!)" }
        );
        println!("   peak measure-window buffered flits: {peak_buffered}");
    }
    println!("\nThe simulated latencies track Eq. (5), and td_q stays below a cycle —");
    println!("the analytic arrays the mapping algorithms optimize are faithful.");
}

fn round2(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 100.0).round() / 100.0).collect()
}
