//! The NP-completeness proof of §III.C, executed: reduce set-partition
//! instances to the decision version of OBM and solve them through an
//! exact OBM oracle. The reduction builds a synthetic "chip" whose tile
//! cache latencies *are* the set elements; a perfectly balanced two-
//! application mapping exists exactly when the set splits into two
//! equal-cardinality, equal-sum halves.
//!
//! ```text
//! cargo run --release --example np_reduction
//! ```

use obm::mapping::reduction::{decide_dobm_exact, set_partition_direct, set_partition_to_dobm};

fn main() {
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("{1,2,3,4}", vec![1.0, 2.0, 3.0, 4.0]),
        ("{1,2,4,8}", vec![1.0, 2.0, 4.0, 8.0]),
        ("{2,3,6,1,5,5}", vec![2.0, 3.0, 6.0, 1.0, 5.0, 5.0]),
        ("{3,3,3,9}", vec![3.0, 3.0, 3.0, 9.0]),
        ("{7,7,7,7,7,7}", vec![7.0; 6]),
        ("{1,1,1,1,1,13}", vec![1.0, 1.0, 1.0, 1.0, 1.0, 13.0]),
    ];
    println!("set-partition via the DOBM reduction (exact oracle = brute-force OBM):\n");
    println!(
        "{:<20} {:>8} {:>14} {:>14}",
        "set", "γ", "DOBM says", "direct solver"
    );
    for (label, s) in cases {
        let red = set_partition_to_dobm(&s);
        let via_dobm = decide_dobm_exact(&red, 1e-9);
        let direct = set_partition_direct(&s);
        assert_eq!(via_dobm, direct, "reduction disagreed on {label}");
        println!(
            "{:<20} {:>8.2} {:>14} {:>14}",
            label,
            red.gamma,
            if via_dobm { "partitionable" } else { "no" },
            if direct { "partitionable" } else { "no" },
        );
    }
    println!("\nEvery answer agrees with direct subset enumeration — the polynomial");
    println!("reduction L ≤p DOBM of the paper's Theorem (§III.C) in running code.");
}
