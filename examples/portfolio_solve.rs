//! Racing the solver portfolio — the `SolveRequest`/`SolveOutcome` API.
//!
//! Builds a paper C1 instance (8×8 mesh, four 16-thread applications),
//! races the default five-algorithm line-up across four workers under a
//! wall-clock deadline, prints the per-task scoreboard, and then resumes
//! the run from its own checkpoint to show that injected results replace
//! re-running.
//!
//! ```text
//! cargo run --release --example portfolio_solve
//! ```

use std::time::{Duration, Instant};

use obm::model::{Mesh, TileLatencies};
use obm::prelude::{Algorithm, ObmInstance, SolveRequest, Termination};
use obm::workload::{PaperConfig, WorkloadBuilder};

fn main() {
    let (workload, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = workload.rate_vectors();
    let inst = ObmInstance::new(tiles, workload.boundaries(), c, m);

    println!("Racing the default portfolio on C1 (8×8, 64 threads)...\n");
    let started = Instant::now();
    let outcome = SolveRequest::builder(&inst)
        .algorithms(Algorithm::default_portfolio())
        .seeds([1, 2, 3])
        .workers(4)
        .deadline(Duration::from_secs(30))
        .build()
        .expect("valid request")
        .solve();
    let elapsed = started.elapsed();

    println!(
        "termination: {} | {} of {} tasks finished | {:.2?} wall-clock",
        outcome.termination,
        outcome.completed_tasks(),
        outcome.stats.len(),
        elapsed
    );
    println!(
        "winner: {} (seed {}) with max-APL {:.4}\n",
        outcome.winner, outcome.winner_seed, outcome.objective
    );
    println!(
        "{:>5} {:<8} {:>5} {:>10}  objective",
        "task", "algo", "seed", "evals"
    );
    for s in &outcome.stats {
        match s.objective {
            Some(v) => println!(
                "{:>5} {:<8} {:>5} {:>10}  {v:.4}",
                s.task, s.algo, s.seed, s.evaluations
            ),
            None => println!(
                "{:>5} {:<8} {:>5} {:>10}  (did not finish)",
                s.task, s.algo, s.seed, s.evaluations
            ),
        }
    }

    // Resume from the checkpoint: every completed task is injected, so
    // the re-run returns the identical winner without re-searching.
    let resumed_start = Instant::now();
    let resumed = SolveRequest::builder(&inst)
        .algorithms(Algorithm::default_portfolio())
        .seeds([1, 2, 3])
        .workers(4)
        .deadline(Duration::from_secs(30))
        .resume(outcome.checkpoint.clone())
        .build()
        .expect("valid request")
        .solve();
    println!(
        "\nresume from checkpoint: {} in {:.2?} (winner {} at {:.4}, identical: {})",
        match resumed.termination {
            Termination::Completed => "completed",
            _ => "partial",
        },
        resumed_start.elapsed(),
        resumed.winner,
        resumed.objective,
        resumed.mapping.as_slice() == outcome.mapping.as_slice()
    );
}
