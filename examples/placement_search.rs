//! Placement co-optimization (DESIGN.md §15): instead of accepting the
//! paper's corner-default memory controllers, make the placement itself a
//! decision variable — an outer search over controller placements with a
//! full mapping solve inside each candidate.
//!
//! ```text
//! cargo run --release --example placement_search
//! ```

use obm::prelude::*;
use std::time::Instant;

/// Four 4-thread apps on a 4×4 chip, app 4 the most memory-intensive —
/// the same configuration as `obm experiments placement`.
fn sweep_instance(mesh: &Mesh) -> ObmInstance {
    let c: Vec<f64> = (0..16).map(|j| 1.0 + 0.5 * (j % 4) as f64).collect();
    let m: Vec<f64> = (0..16).map(|j| 0.2 + 0.15 * (j / 4) as f64).collect();
    let tiles = TileLatencies::compute(
        mesh,
        &MemoryControllers::corners(mesh),
        LatencyParams::paper_table2(),
    );
    ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], c, m)
}

fn tiles_of(layout: &ChipLayout) -> Vec<usize> {
    layout
        .controllers()
        .tiles()
        .iter()
        .map(|t| t.to_paper())
        .collect()
}

fn main() {
    let mesh = Mesh::square(4);
    let inst = sweep_instance(&mesh);

    // --- Exhaustive outer search, sort-select-swap inner solve. The 1820
    // ways to place 4 controllers on 16 tiles collapse to 252 canonical
    // placements under the mesh's D4 symmetry group.
    let mut opts = PlacementOptions::new(4);
    opts.mode = SearchMode::Exhaustive;
    let t0 = Instant::now();
    let out = co_optimize(&inst, &mesh, &opts, sss_inner)
        .expect("4 controllers on a 4x4 mesh is a valid search");
    println!(
        "exhaustive: {} canonical layouts scored in {:.2?}",
        out.evaluated,
        t0.elapsed()
    );
    println!(
        "  corner default {:?}: max-APL {:.4}",
        tiles_of(&out.baseline_layout),
        out.baseline_objective
    );
    println!(
        "  best found     {:?}: max-APL {:.4}  ({:.2}% better)",
        tiles_of(&out.layout),
        out.objective,
        out.gain_pct()
    );

    // --- The same search with the full solver portfolio racing inside
    // every candidate layout. Deterministic for any worker count because
    // the budget is unlimited (no wall-clock deadline).
    let inner = portfolio_inner(Algorithm::default_portfolio(), 4, SolveBudget::unlimited());
    let t0 = Instant::now();
    let pf = co_optimize(&inst, &mesh, &opts, inner)
        .expect("4 controllers on a 4x4 mesh is a valid search");
    println!(
        "portfolio inner: best {:?} max-APL {:.4} in {:.2?}",
        tiles_of(&pf.layout),
        pf.objective,
        t0.elapsed()
    );
    assert!(pf.objective <= out.objective + 1e-12);

    // --- Large chips: exhaustive enumeration is hopeless (C(64,4) is
    // 635k placements before symmetry), so the outer loop anneals over
    // placements instead. Same API, same determinism from the seed.
    let mesh8 = Mesh::square(8);
    let c: Vec<f64> = (0..64).map(|j| 1.0 + 0.5 * (j % 4) as f64).collect();
    let m: Vec<f64> = (0..64).map(|j| 0.2 + 0.05 * (j / 16) as f64).collect();
    let tiles = TileLatencies::compute(
        &mesh8,
        &MemoryControllers::corners(&mesh8),
        LatencyParams::paper_table2(),
    );
    let inst8 = ObmInstance::new(tiles, vec![0, 16, 32, 48, 64], c, m);
    let mut opts8 = PlacementOptions::new(4);
    opts8.mode = SearchMode::Annealed { iterations: 120 };
    let t0 = Instant::now();
    let out8 = co_optimize(&inst8, &mesh8, &opts8, sss_inner)
        .expect("4 controllers on an 8x8 mesh is a valid search");
    println!(
        "8x8 annealed ({} layouts scored in {:.2?}): corners {:.4} -> {:?} {:.4} ({:.2}% better)",
        out8.evaluated,
        t0.elapsed(),
        out8.baseline_objective,
        tiles_of(&out8.layout),
        out8.objective,
        out8.gain_pct()
    );
    assert!(out8.objective <= out8.baseline_objective);
}
