//! Differentiated service via weighted OBM — the integration with
//! QoS mechanisms that the paper's §II.A names as motivation: a paying
//! ("gold") tenant shares the chip with best-effort tenants and must see
//! proportionally lower on-chip latency, enforced purely by mapping.
//!
//! ```text
//! cargo run --release --example qos_priorities
//! ```

use obm::mapping::algorithms::{Mapper, SortSelectSwap};
use obm::mapping::{evaluate, ObmInstance};
use obm::model::{Mesh, TileLatencies};
use obm::workload::{PaperConfig, WorkloadBuilder};

fn main() {
    let (workload, _) = WorkloadBuilder::paper(PaperConfig::C2).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = workload.rate_vectors();
    let base = ObmInstance::new(tiles, workload.boundaries(), c, m);

    println!("Four tenants on an 8×8 CMP; tenant 2 buys 'gold' service.\n");
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9}",
        "scenario", "app1", "app2*", "app3", "app4"
    );
    for (label, weights) in [
        ("equal service (paper OBM)", vec![1.0, 1.0, 1.0, 1.0]),
        ("gold = weight 1.5", vec![1.0, 1.5, 1.0, 1.0]),
        ("gold = weight 2", vec![1.0, 2.0, 1.0, 1.0]),
        ("gold = weight 3", vec![1.0, 3.0, 1.0, 1.0]),
    ] {
        let inst = base.clone().with_app_weights(weights);
        let r = evaluate(&inst, &SortSelectSwap::default().map(&inst, 0));
        println!(
            "{:<28} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            label, r.per_app[0], r.per_app[1], r.per_app[2], r.per_app[3]
        );
    }
    println!("\n(*) the prioritized tenant. The min-max objective max(w·d) equalizes");
    println!("weighted latencies, so the gold tenant's APL falls ∝ 1/w until it owns");
    println!("the cheapest tiles on the chip — no router or cache changes required.");
}
