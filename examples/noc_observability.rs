//! Spatial NoC observability tour: run one mapped workload under a full
//! probe and read back everything the flow layer records —
//!
//! * the per-link flit heatmap (rendered as ASCII mesh art) with the
//!   conservation check against the report's link-traversal counter,
//! * exact nearest-rank latency quantiles from the sparse histograms
//!   (no bucket interpolation),
//! * the per-packet latency decomposition `source-queue + in-network +
//!   serialization = latency` aggregated per application, and
//! * per-router stall counters locating *where* contention concentrates.
//!
//! ```text
//! cargo run --release --example noc_observability
//! ```

use obm::prelude::*;

fn main() {
    let (workload, _) = WorkloadBuilder::paper(PaperConfig::C1).build();
    let mesh = Mesh::square(8);
    let tiles = TileLatencies::paper_default(&mesh);
    let (c, m) = workload.rate_vectors();
    let inst = ObmInstance::new(tiles, workload.boundaries(), c, m);
    let mapping = SortSelectSwap::default().map(&inst, 0);

    let cfg = SimConfig::builder(mesh)
        .warmup_cycles(2_000)
        .measure_cycles(20_000)
        .seed(11)
        .build()
        .expect("paper defaults are valid");
    let mut sink = RingSink::new(64);
    println!("== simulating 20k cycles of C1 traffic under a spatial probe…");
    let report = Network::new(cfg, traffic_spec(&inst, &mapping))
        .expect("valid scenario")
        .run_probed(&mut sink);

    let heat = sink
        .heatmaps()
        .next()
        .expect("probed runs always emit a heatmap");
    let flow = sink
        .flow_summaries()
        .next()
        .expect("probed runs always emit a flow summary");

    println!("\nlink heatmap (decile digits, 9 = hottest link, . = idle):");
    print!("{}", heat.ascii_mesh());

    // Conservation: per-link counts sum to the global traversal counter.
    assert_eq!(heat.total_link_flits(), report.network.link_flit_traversals);
    println!(
        "\nlink conservation: {} flit traversals across {} directed links",
        heat.total_link_flits(),
        heat.num_links()
    );
    let hottest = heat
        .links()
        .max_by_key(|l| l.flits)
        .expect("8x8 mesh has links");
    println!(
        "hottest link: tile {} -> tile {} ({} flits)",
        hottest.tile, hottest.to, hottest.flits
    );
    let stalls: u64 = heat.credit_stalls.iter().sum::<u64>() + heat.vc_stalls.iter().sum::<u64>();
    println!("credit + vc-alloc stall cycles across all routers: {stalls}");

    // Exact quantiles and the decomposition, per application.
    println!("\nper-app latency decomposition (measured packets, cycles):");
    println!("  app     packets    mean     p50   p95   p99   max    src-q     net     ser");
    for (i, acc) in flow.groups.iter().enumerate() {
        let q = |q: f64| acc.histogram.quantile(q).unwrap_or(0);
        println!(
            "  App {}  {:>8} {:>7.2} {:>7} {:>5} {:>5} {:>5} {:>8.3} {:>7.2} {:>7.2}",
            i + 1,
            acc.packets,
            acc.histogram.mean(),
            q(0.5),
            q(0.95),
            q(0.99),
            acc.histogram.max().unwrap_or(0),
            acc.mean_source_queue(),
            acc.mean_in_network(),
            acc.mean_serialization(),
        );
    }
    let all = flow.merged();
    println!(
        "\nglobal: mean {:.2} = src-q {:.3} + net {:.2} + ser {:.2} (exact identity per packet)",
        all.histogram.mean(),
        all.mean_source_queue(),
        all.mean_in_network(),
        all.mean_serialization(),
    );
    println!(
        "exact p99 {} vs max {} over {} measured packets",
        all.histogram.quantile(0.99).expect("traffic flowed"),
        all.histogram.max().expect("traffic flowed"),
        all.packets
    );
    println!("\nAt paper loads the in-network (hop-count) term carries the mean while");
    println!("source-queuing stays near zero — the premise of the analytic TC/TM arrays.");
}
