//! Runtime metrics & span tracing (DESIGN.md §17) — one registry
//! observing all four instrumented subsystems, then exported and
//! rendered the way `obm --metrics` / `obm status` do it:
//!
//! 1. **simulator** — a seeded 4×4 run on the sharded engine reports
//!    packet/cycle counters and the shard-pool span tree;
//! 2. **portfolio** — a solver race reports task spans, evaluation
//!    counters and throughput gauges;
//! 3. **placement** — `co_optimize` reports candidate/memo/inner-solve
//!    counters and the inner-solve span;
//! 4. **remap** — a closed-loop `RemapController` run reports window,
//!    solve and migration counters.
//!
//! Metrics are write-only observers: every result below is bit-identical
//! to the same run without the registry attached (pinned by
//! `tests/metrics.rs`). Set `OBM_METRICS_CLOCK=logical` to zero all
//! wall-derived values — the printed snapshot then becomes
//! byte-deterministic.
//!
//! ```text
//! cargo run --release --example runtime_metrics
//! ```

use obm::mapping::RemapConfig;
use obm::prelude::*;

fn scenario(mesh: Mesh, mapping: &Mapping, inst: &ObmInstance, seed: u64) -> Network {
    let mut cfg = SimConfig::paper_defaults(mesh);
    cfg.shards = 2;
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 6_000;
    cfg.seed = seed;
    let traffic = traffic_spec(inst, mapping);
    Network::new(cfg, traffic).expect("valid scenario")
}

fn main() {
    // Honor the same clock switch the CLI exposes, so
    // `OBM_METRICS_CLOCK=logical cargo run --example runtime_metrics`
    // prints a byte-deterministic snapshot.
    let clock = match std::env::var("OBM_METRICS_CLOCK").as_deref() {
        Ok("logical") => ClockMode::Logical,
        _ => ClockMode::Wall,
    };
    let registry = MetricsRegistry::with_clock(clock);
    let metrics = registry.handle();

    // A 4-app instance on the paper-default 4×4 chip.
    let mesh = Mesh::square(4);
    let tiles = TileLatencies::paper_default(&mesh);
    let cache_rates: Vec<f64> = (0..16).map(|i| 0.5 + 0.6 * (i % 5) as f64).collect();
    let mem_rates: Vec<f64> = cache_rates.iter().map(|r| r * 0.15).collect();
    let inst = ObmInstance::new(tiles, vec![0, 4, 8, 12, 16], cache_rates, mem_rates);

    // -- portfolio: the solver race reports into the registry ------------
    let outcome = SolveRequest::builder(&inst)
        .algorithm(Algorithm::SortSelectSwap(SortSelectSwap::default()))
        .algorithm(Algorithm::SimulatedAnnealing(SimulatedAnnealing {
            iterations: 20_000,
            ..SimulatedAnnealing::default()
        }))
        .algorithm(Algorithm::BalancedGreedy)
        .seeds([0, 1])
        .workers(2)
        .metrics(metrics.clone())
        .build()
        .expect("valid request")
        .solve();
    println!(
        "portfolio: winner {} (seed {}) max-APL {:.3}",
        outcome.winner, outcome.winner_seed, outcome.objective
    );

    // -- simulator: seeded sharded run with the registry attached --------
    let report = scenario(mesh, &outcome.mapping, &inst, 42)
        .with_metrics(metrics.clone())
        .run();
    println!(
        "simulator: {} cycles, {}/{} packets, simulated g-APL {:.3}",
        report.network.cycles_run,
        report.delivered,
        report.injected,
        report.g_apl()
    );

    // -- placement: co-optimize controller placement + mapping -----------
    let mut opts = PlacementOptions::new(2);
    opts.metrics = metrics.clone();
    let placed = co_optimize(&inst, &mesh, &opts, sss_inner).expect("search succeeds");
    println!(
        "placement: {} layout(s) scored, best max-APL {:.3} (gain {:.2}%)",
        placed.evaluated,
        placed.objective,
        placed.gain_pct()
    );

    // -- remap: a closed-loop controller watching windowed telemetry -----
    let mut ctrl = RemapController::with_config(
        inst.clone(),
        outcome.mapping.clone(),
        mesh,
        RemapConfig::default(),
    )
    .expect("valid controller")
    .with_metrics(metrics.clone());
    scenario(mesh, &outcome.mapping, &inst, 7)
        .run_controlled(&mut NoopSink, &mut ctrl)
        .expect("controlled run succeeds");
    println!(
        "remap: {} window(s) observed, {} re-solve(s), {} remap(s)",
        metrics.counter_value("remap_windows_total").unwrap_or(0),
        ctrl.solves(),
        ctrl.remap_count()
    );

    // -- export: what `--metrics FILE` writes and `obm status` renders ---
    let snapshot = registry.snapshot();
    println!("\n{}", snapshot.render_dashboard(1));
    let prom = snapshot.to_prometheus();
    println!(
        "Prometheus export: {} lines, {} bytes (obm solve --metrics FILE)",
        prom.lines().count(),
        prom.len()
    );
    let reparsed = MetricsSnapshot::parse(&prom).expect("own export parses");
    assert_eq!(reparsed, snapshot, "export round-trips losslessly");
}
